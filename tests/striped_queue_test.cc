// Lock-striped InferenceRequestQueue (ISSUE 6): the MPMC entry point of the
// sharded serving path. Covers the striping contracts — FIFO per stripe,
// per-stripe bounds, deterministic stripe mapping — plus
// multi-producer/multi-consumer stress and shutdown drain. The CI `tsan`
// and `asan-ubsan` jobs run this suite over the same scenarios.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "serving/inference_queue.h"

namespace byom::serving {
namespace {

using std::chrono::milliseconds;

InferenceRequest request_for(std::uint64_t job_id) {
  InferenceRequest request;
  request.job.job_id = job_id;
  request.job.job_key = "pipe/step";
  request.enqueued_at = std::chrono::steady_clock::now();
  return request;
}

TEST(StripedQueue, RejectsZeroCapacityAndZeroStripes) {
  EXPECT_THROW(InferenceRequestQueue(0, 1), std::invalid_argument);
  EXPECT_THROW(InferenceRequestQueue(8, 0), std::invalid_argument);
}

TEST(StripedQueue, StripeMappingIsDeterministicAndInRange) {
  InferenceRequestQueue queue(64, 4);
  EXPECT_EQ(queue.num_stripes(), 4u);
  InferenceRequestQueue other(64, 4);
  std::set<std::size_t> seen;
  for (std::uint64_t id = 0; id < 256; ++id) {
    const std::size_t stripe = queue.stripe_of(id);
    EXPECT_LT(stripe, 4u);
    // Same id -> same stripe, in every instance and every run.
    EXPECT_EQ(stripe, queue.stripe_of(id));
    EXPECT_EQ(stripe, other.stripe_of(id));
    seen.insert(stripe);
  }
  // The mix spreads sequential ids over every stripe.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(StripedQueue, SingleStripeKeepsGlobalFifo) {
  InferenceRequestQueue queue(8, 1);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(queue.try_push(request_for(id)));
  }
  for (std::uint64_t expected = 1; expected <= 5; ++expected) {
    const auto popped = queue.pop(milliseconds(0));
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->job.job_id, expected);
  }
}

TEST(StripedQueue, BoundsArePerStripe) {
  InferenceRequestQueue queue(8, 4);  // 2 slots per stripe
  EXPECT_EQ(queue.capacity(), 8u);

  // Find three ids mapping to the same stripe: the third push must bounce
  // even though the queue as a whole is nearly empty.
  const std::size_t target = queue.stripe_of(0);
  std::vector<std::uint64_t> same_stripe;
  for (std::uint64_t id = 0; same_stripe.size() < 3; ++id) {
    if (queue.stripe_of(id) == target) same_stripe.push_back(id);
  }
  EXPECT_TRUE(queue.try_push(request_for(same_stripe[0])));
  EXPECT_TRUE(queue.try_push(request_for(same_stripe[1])));
  EXPECT_FALSE(queue.try_push(request_for(same_stripe[2])))
      << "per-stripe bound not enforced";
  EXPECT_EQ(queue.size(), 2u);

  // A slot frees once a request on that stripe is consumed.
  ASSERT_TRUE(queue.pop(milliseconds(0)).has_value());
  EXPECT_TRUE(queue.try_push(request_for(same_stripe[2])));
}

TEST(StripedQueue, FifoPerStripeWithConcurrentProducers) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 500;
  InferenceRequestQueue queue(kProducers * kPerProducer, 4);

  // Producer p pushes ids p*1e6 + k with k ascending; a single consumer
  // observes the global pop order directly. The striping contract: for any
  // (producer, stripe) pair, the k's must come out ascending — a stripe is
  // FIFO, and one producer's pushes to one stripe are ordered.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t k = 0; k < kPerProducer; ++k) {
        const std::uint64_t id = p * 1000000ULL + k;
        while (!queue.try_push(request_for(id))) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::uint64_t> popped;
  popped.reserve(kProducers * kPerProducer);
  while (popped.size() < kProducers * kPerProducer) {
    std::vector<InferenceRequest> batch;
    if (queue.pop_batch(batch, 64, milliseconds(50)) == 0) continue;
    for (const auto& request : batch) popped.push_back(request.job.job_id);
  }
  for (auto& producer : producers) producer.join();

  // Completeness: every id exactly once.
  std::set<std::uint64_t> unique(popped.begin(), popped.end());
  EXPECT_EQ(unique.size(), kProducers * kPerProducer);

  // FIFO per (producer, stripe).
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> last_k;
  for (const std::uint64_t id : popped) {
    const std::size_t p = static_cast<std::size_t>(id / 1000000ULL);
    const std::uint64_t k = id % 1000000ULL;
    const auto key = std::make_pair(p, queue.stripe_of(id));
    const auto it = last_k.find(key);
    if (it != last_k.end()) {
      EXPECT_LT(it->second, k)
          << "stripe FIFO violated for producer " << p;
    }
    last_k[key] = k;
  }
}

TEST(StripedQueue, MpmcStressLosesNothingAndDuplicatesNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 1000;
  InferenceRequestQueue queue(256, 8);

  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t k = 0; k < kPerProducer; ++k) {
        const std::uint64_t id = p * 1000000ULL + k;
        while (!queue.try_push(request_for(id))) {
          std::this_thread::yield();  // bounded queue back-pressures
        }
        accepted.fetch_add(1);
      }
    });
  }

  std::mutex popped_mutex;
  std::vector<std::uint64_t> popped;
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<InferenceRequest> batch;
      // The blocking pop returns 0 only once shut down AND drained, so a
      // consumer can exit without ever dropping an accepted request.
      while (true) {
        batch.clear();
        if (queue.pop_batch(batch, 32) == 0) break;
        std::lock_guard<std::mutex> lock(popped_mutex);
        for (const auto& request : batch) {
          popped.push_back(request.job.job_id);
        }
      }
    });
  }

  for (auto& producer : producers) producer.join();
  queue.shutdown();
  for (auto& consumer : consumers) consumer.join();

  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped.size(), kProducers * kPerProducer);
  std::set<std::uint64_t> unique(popped.begin(), popped.end());
  EXPECT_EQ(unique.size(), popped.size()) << "duplicate pop";
  EXPECT_EQ(queue.size(), 0u);
}

TEST(StripedQueue, ShutdownRejectsPushesAndDrainsRemainder) {
  InferenceRequestQueue queue(64, 4);
  std::vector<std::uint64_t> pushed;
  for (std::uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(queue.push(request_for(id)));
    pushed.push_back(id);
  }
  queue.shutdown();
  EXPECT_TRUE(queue.shut_down());
  EXPECT_FALSE(queue.try_push(request_for(99)));
  EXPECT_FALSE(queue.push(request_for(99)));

  // Everything accepted before shutdown is still drained.
  std::vector<InferenceRequest> out;
  std::size_t total = 0;
  std::size_t popped;
  while ((popped = queue.pop_batch(out, 4, milliseconds(0))) > 0) {
    total += popped;
  }
  EXPECT_EQ(total, pushed.size());
  EXPECT_EQ(queue.size(), 0u);
  // Shut down and drained: the blocking pop exits immediately with 0.
  out.clear();
  EXPECT_EQ(queue.pop_batch(out, 4), 0u);
}

TEST(StripedQueue, ShutdownUnblocksBlockedProducer) {
  InferenceRequestQueue queue(4, 4);  // 1 slot per stripe
  const std::size_t target = queue.stripe_of(0);
  std::vector<std::uint64_t> same_stripe;
  for (std::uint64_t id = 0; same_stripe.size() < 2; ++id) {
    if (queue.stripe_of(id) == target) same_stripe.push_back(id);
  }
  ASSERT_TRUE(queue.try_push(request_for(same_stripe[0])));

  std::atomic<bool> push_returned{false};
  std::thread producer([&] {
    // Blocks: the stripe is full.
    EXPECT_FALSE(queue.push(request_for(same_stripe[1])));
    push_returned.store(true);
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(push_returned.load());
  queue.shutdown();
  producer.join();
  EXPECT_TRUE(push_returned.load());
}

TEST(StripedQueue, TimedPopTimesOutOnEmptyQueue) {
  InferenceRequestQueue queue(16, 4);
  std::vector<InferenceRequest> out;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.pop_batch(out, 8, milliseconds(10)), 0u);
  EXPECT_FALSE(queue.pop(milliseconds(0)).has_value());
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(elapsed, 5.0) << "timed pop did not time out";
}

}  // namespace
}  // namespace byom::serving
