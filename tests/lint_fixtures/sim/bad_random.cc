// Fixture: ambient randomness inside the deterministic core.
#include <random>

unsigned bad_seed() {
  std::random_device device;
  return device();
}
