// Fixture: wall-clock reads inside the deterministic core must fire even
// when tagged — sim/ is a hard-ban scope.
#include <chrono>
#include <thread>

double bad_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void bad_tagged_sleep() {
  // lint:allow(wall-clock) tags are not honored in sim/ — still a violation
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
