// Fixture: an untagged wall-clock read outside the core still fires.
#include <chrono>

double bad_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
