// Fixture: outside the deterministic core a tagged wall-clock read passes,
// including when the tagged statement spans multiple lines.
#include <chrono>

double ok_deadline_ms() {
  // lint:allow(wall-clock) threaded-mode deadline fixture: intentional
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  return std::chrono::duration<double, std::milli>(
             deadline.time_since_epoch())
      .count();
}
