// Fixture: a tagged ambient-randomness use outside the core passes.
#include <random>

unsigned ok_entropy() {
  // lint:allow(ambient-random) fixture: ops-only entropy, never in replay
  std::random_device device;
  return device();
}
