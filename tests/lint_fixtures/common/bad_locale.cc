// Fixture: locale-dependent character classification fires repo-wide.
#include <cctype>

bool bad_is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

char bad_fold(char c) {
  return static_cast<char>(tolower(static_cast<unsigned char>(c)));
}
