// Fixture: raw std::mutex primitives outside the capability wrapper.
#include <mutex>

namespace fixture {

class Counter {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++value_;
  }

 private:
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace fixture
