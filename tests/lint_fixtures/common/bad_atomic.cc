// Fixture: explicit memory_order without an `// atomic:` tag fires.
#include <atomic>
#include <cstdint>

namespace {

std::atomic<std::uint64_t> counter{0};

void untagged_bump() {
  counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t untagged_read() {
  // A plain comment above is not a tag.
  return counter.load(std::memory_order_acquire);
}

}  // namespace
