// Fixture: tagged raw-mutex uses pass (the wrapper implementation itself
// relies on this).
#include <mutex>  // lint:allow(raw-mutex) fixture: wrapper-internal use

namespace fixture {

void with_native(void* native_handle) {
  // lint:allow(raw-mutex) fixture: adopting a native handle
  std::mutex* mu = static_cast<std::mutex*>(native_handle);
  mu->lock();
  mu->unlock();
}

}  // namespace fixture
