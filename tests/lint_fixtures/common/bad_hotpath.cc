// Fixture: allocation inside a `// hotpath:` marked function body.
#include <cstddef>
#include <functional>
#include <vector>

// hotpath: fixture — this body must not allocate, but it does.
std::size_t bad_sum(std::size_t n) {
  std::vector<std::size_t> scratch(n, 1);
  std::function<std::size_t(std::size_t)> id = [](std::size_t v) {
    return v;
  };
  std::size_t total = 0;
  for (const auto v : scratch) total += id(v);
  return total;
}
