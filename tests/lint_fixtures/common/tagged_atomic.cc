// Fixture: every accepted `// atomic:` tag placement passes.
#include <atomic>
#include <cstdint>

namespace {

std::atomic<std::uint64_t> counter{0};
std::atomic<bool> flag{false};

void same_line() {
  counter.fetch_add(1, std::memory_order_relaxed);  // atomic: stats tally
}

void block_above() {
  // atomic: release — pairs with the acquire load in block_covers_run
  flag.store(true, std::memory_order_release);
}

void wrapped_call() {
  // The tag rides on an earlier line of the same wrapped statement.
  counter.fetch_add(  // atomic: relaxed — stats tally, summed later
      1, std::memory_order_relaxed);
}

std::uint64_t block_covers_run() {
  // atomic: acquire — pairs with block_above's release store; one tag
  // block covers the whole contiguous run of atomic statements below
  const bool ready = flag.load(std::memory_order_acquire);
  const std::uint64_t a = counter.load(std::memory_order_relaxed);
  const std::uint64_t b = counter.load(std::memory_order_relaxed);
  return ready ? a : b;
}

}  // namespace
