// Fixture: a tagged locale call passes, and tokens that appear only in
// comments or string literals never fire (the linter strips both).
//
// Comment mention: tolower(isalnum(...)) is fine here.
#include <cctype>
#include <string>

char ok_fold(char c) {
  // lint:allow(locale-dependent) fixture: documented CLI-only normalization
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

std::string doc() { return "call tolower(c) and isspace(c) by hand"; }
