// Fixture: an annotated mutex member passes, and so does a tagged
// protocol-only mutex that deliberately guards nothing.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void bump() {
    byom::common::MutexLock lock(mutex_);
    ++value_;
  }

 private:
  common::Mutex mutex_;
  int value_ BYOM_GUARDED_BY(mutex_) = 0;
  // lint:allow(guarded-mutex) fixture: protocol-only gate, guards no data
  common::Mutex gate_mutex_;
};

}  // namespace fixture
