// Fixture: a common::Mutex member with no BYOM_GUARDED_BY pairing and no
// allow tag.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void bump() {
    byom::common::MutexLock lock(mutex_);
    ++value_;
  }

 private:
  common::Mutex mutex_;
  int value_ = 0;
};

}  // namespace fixture
