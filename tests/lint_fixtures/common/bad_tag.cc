// Fixture: malformed allow tags are themselves violations — a tag with no
// reason, and a tag naming a rule that does not exist.
#include <cctype>

char bad_bare_tag(char c) {
  // lint:allow(locale-dependent)
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

// lint:allow(no-such-rule) this rule name is not in the catalog
int unrelated() { return 0; }
