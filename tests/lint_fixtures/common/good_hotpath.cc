// Fixture: a clean hotpath body passes; allocating code OUTSIDE the marked
// body (before and after) is not the hotpath rule's business.
#include <cstddef>
#include <vector>

std::vector<std::size_t> make_scratch(std::size_t n) {
  return std::vector<std::size_t>(n, 1);
}

// hotpath: fixture — pointer arithmetic only, no allocation.
std::size_t good_sum(const std::size_t* data, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += data[i];
  }
  return total;
}

std::vector<std::size_t> more_scratch() { return {1, 2, 3}; }
