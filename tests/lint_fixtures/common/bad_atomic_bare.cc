// Fixture: a bare `// atomic:` tag with no reason is itself a violation.
#include <atomic>
#include <cstdint>

namespace {

std::atomic<std::uint64_t> counter{0};

void bare_same_line() {
  counter.fetch_add(1, std::memory_order_relaxed);  // atomic:
}

void bare_block_above() {
  // atomic:
  counter.store(0, std::memory_order_release);
}

}  // namespace
