// Fixture: the top-layer header.
#pragma once

namespace fixture {
inline int high() { return 1; }
}
