// Fixture: base (layer 0) must not reach up into top (layer 1).
#pragma once

#include "top/high.h"

namespace fixture {
inline int low() { return high(); }
}
