// Fixture: no #pragma once guard.

namespace fixture {
inline int unguarded() { return 0; }
}
