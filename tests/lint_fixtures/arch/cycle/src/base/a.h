// Fixture: half of an include cycle.
#pragma once

#include "base/b.h"
