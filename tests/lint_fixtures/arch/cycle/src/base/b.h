// Fixture: the other half of the include cycle.
#pragma once

#include "base/a.h"
