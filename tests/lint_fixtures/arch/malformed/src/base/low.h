// Fixture: never reached; the contract itself is rejected.
#pragma once
