// Fixture: <regex> is banned by the fixture contract.
#include <regex>

bool matches(const char*) { return false; }
