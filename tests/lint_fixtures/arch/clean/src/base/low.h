// Fixture: clean base-layer header.
#pragma once

namespace fixture {
inline int low() { return 0; }
}
