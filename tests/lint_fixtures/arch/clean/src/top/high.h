// Fixture: top may include down into base.
#pragma once

#include "base/low.h"

namespace fixture {
inline int high() { return low(); }
}
