// Fixture: an implementation file someone tries to include.
namespace fixture {
int impl() { return 0; }
}
