// Fixture: includes a .cc file instead of a header.
#include "base/impl.cc"
