#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/units.h"
#include "core/byom.h"
#include "policy/byom_policy.h"
#include "core/category_model.h"
#include "core/labeler.h"
#include "trace/generator.h"

namespace byom::core {
namespace {

using common::kGiB;

trace::Job job_with(double saving_sign, double density) {
  static std::uint64_t next_id = 1;
  trace::Job j;
  j.job_id = next_id++;
  j.peak_bytes = kGiB;
  j.lifetime = 600.0;
  j.cost_hdd = 1.0;
  j.cost_ssd = 1.0 - saving_sign * 0.1;
  j.io_density = density;
  return j;
}

std::vector<trace::Job> labeler_population() {
  std::vector<trace::Job> jobs;
  // 100 cost-saving jobs with densities 1..100, plus 20 negative jobs.
  for (int i = 1; i <= 100; ++i) {
    jobs.push_back(job_with(+1.0, static_cast<double>(i)));
  }
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(job_with(-1.0, 50.0));
  }
  return jobs;
}

trace::Trace cluster_trace(std::uint32_t cluster, std::uint64_t seed,
                           int pipelines = 14, double days = 6.0) {
  trace::GeneratorConfig cfg = trace::canonical_cluster_config(cluster, seed);
  cfg.num_pipelines = pipelines;
  cfg.duration = days * 86400.0;
  return trace::generate_cluster_trace(cfg);
}

CategoryModelConfig small_model_config(int categories = 8) {
  CategoryModelConfig cfg;
  cfg.num_categories = categories;
  cfg.gbdt.num_rounds = 10;
  cfg.gbdt.max_trees_total = categories * 10;
  return cfg;
}

// ---------------------------------------------------------------- labeler

TEST(Labeler, NegativeSavingIsCategoryZero) {
  const auto labeler = CategoryLabeler::fit(labeler_population(), 5);
  EXPECT_EQ(labeler.category_of(job_with(-1.0, 99.0)), 0);
}

TEST(Labeler, DensityRankOrdersCategories) {
  const auto labeler = CategoryLabeler::fit(labeler_population(), 5);
  const int low = labeler.category_of(job_with(+1.0, 5.0));
  const int mid = labeler.category_of(job_with(+1.0, 50.0));
  const int high = labeler.category_of(job_with(+1.0, 99.0));
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
  EXPECT_GE(low, 1);
  EXPECT_LE(high, 4);
}

TEST(Labeler, EquiDepthBalance) {
  const auto jobs = labeler_population();
  const int n = 5;
  const auto labeler = CategoryLabeler::fit(jobs, n);
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  for (const auto& j : jobs) {
    ++counts[static_cast<std::size_t>(labeler.category_of(j))];
  }
  // 100 positive jobs over 4 density buckets: each ~25.
  for (int c = 1; c < n; ++c) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(c)], 25, 4);
  }
  EXPECT_EQ(counts[0], 20);
}

TEST(Labeler, LabelVectorMatchesPerJob) {
  const auto jobs = labeler_population();
  const auto labeler = CategoryLabeler::fit(jobs, 6);
  const auto labels = labeler.label(jobs);
  ASSERT_EQ(labels.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(labels[i], labeler.category_of(jobs[i]));
  }
}

TEST(Labeler, SerializationRoundTrip) {
  const auto labeler = CategoryLabeler::fit(labeler_population(), 7);
  std::stringstream ss;
  labeler.save(ss);
  const auto loaded = CategoryLabeler::load(ss);
  EXPECT_EQ(loaded.num_categories(), 7);
  for (double d : {1.0, 20.0, 50.0, 80.0, 99.0}) {
    EXPECT_EQ(loaded.category_of(job_with(1.0, d)),
              labeler.category_of(job_with(1.0, d)));
  }
}

TEST(Labeler, RejectsBadInput) {
  EXPECT_THROW(CategoryLabeler::fit(labeler_population(), 1),
               std::invalid_argument);
  CategoryLabeler unfitted;
  EXPECT_THROW(unfitted.category_of(job_with(1.0, 1.0)), std::logic_error);
}

TEST(Labeler, UnseenExtremeDensityClampsToTopCategory) {
  const auto labeler = CategoryLabeler::fit(labeler_population(), 5);
  EXPECT_EQ(labeler.category_of(job_with(+1.0, 1e12)), 4);
}

// ------------------------------------------------------------ CategoryModel

class CategoryModelTest : public ::testing::Test {
 protected:
  static const CategoryModel& model() {
    static const CategoryModel m = [] {
      const auto t = cluster_trace(0, 404);
      const auto split = trace::split_train_test(t);
      return CategoryModel::train(split.train.jobs(), small_model_config());
    }();
    return m;
  }
};

TEST_F(CategoryModelTest, TrainsAndPredictsInRange) {
  const auto t = cluster_trace(0, 405);
  for (const auto& j : t.jobs()) {
    const int c = model().predict_category(j);
    EXPECT_GE(c, 0);
    EXPECT_LT(c, model().num_categories());
  }
}

TEST_F(CategoryModelTest, BeatsRandomGuessing) {
  const auto t = cluster_trace(0, 404);
  const auto split = trace::split_train_test(t);
  const double acc = model().top1_accuracy(split.test.jobs());
  // Random over 8 classes would be 0.125; the model must beat it clearly.
  EXPECT_GT(acc, 0.25);
}

TEST_F(CategoryModelTest, PredictedCorrelatesWithTrueCategory) {
  const auto t = cluster_trace(0, 404);
  const auto split = trace::split_train_test(t);
  // Mean |predicted - true| must be far below the random-guess distance.
  double mean_abs = 0.0;
  for (const auto& j : split.test.jobs()) {
    mean_abs += std::abs(model().predict_category(j) -
                         model().true_category(j));
  }
  mean_abs /= static_cast<double>(split.test.size());
  EXPECT_LT(mean_abs, 2.0);
}

TEST_F(CategoryModelTest, ProbaSumsToOne) {
  const auto t = cluster_trace(0, 405);
  const auto p = model().predict_proba(t.jobs().front());
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(CategoryModelTest, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "byom_model_test.txt";
  model().save_file(path.string());
  const auto loaded = CategoryModel::load_file(path.string());
  const auto t = cluster_trace(0, 406, 6, 2.0);
  for (const auto& j : t.jobs()) {
    EXPECT_EQ(loaded.predict_category(j), model().predict_category(j));
    EXPECT_EQ(loaded.true_category(j), model().true_category(j));
  }
  std::filesystem::remove(path);
}

TEST_F(CategoryModelTest, BatchPredictionMatchesPerJob) {
  const auto t = cluster_trace(0, 407);
  const auto& jobs = t.jobs();
  const auto batched = model().predict_categories(jobs);
  ASSERT_EQ(batched.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(batched[i], model().predict_category(jobs[i]));
  }
}

TEST_F(CategoryModelTest, PredictBatchOverFeatureRows) {
  const auto t = cluster_trace(0, 408, 6, 2.0);
  const auto& jobs = t.jobs();
  std::vector<std::vector<float>> features;
  std::vector<FeatureRow> rows;
  for (const auto& j : jobs) {
    features.push_back(model().extractor().extract(j));
  }
  for (const auto& f : features) rows.push_back(FeatureRow{f.data()});
  const auto batched =
      model().predict_batch(common::Span<const FeatureRow>(rows));
  ASSERT_EQ(batched.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(batched[i], model().predict_category(jobs[i]));
  }
}

TEST(CategoryModel, EmptyTrainingThrows) {
  EXPECT_THROW(CategoryModel::train({}, small_model_config()),
               std::invalid_argument);
}

TEST(CategoryModel, PaperDefaultsAre15Categories) {
  CategoryModelConfig cfg;
  EXPECT_EQ(cfg.num_categories, 15);
  EXPECT_LE(cfg.gbdt.max_trees_total, 300);
  EXPECT_LE(cfg.gbdt.tree.max_depth, 6);
}

// ------------------------------------------------------------- ModelRegistry

TEST(ModelRegistry, LookupPrefersPipelineModel) {
  const auto pipeline_backend =
      make_gbdt_backend(std::make_shared<CategoryModel>());
  const auto default_backend =
      make_gbdt_backend(std::make_shared<CategoryModel>());
  ShardedModelRegistry registry;
  registry.register_model("pipe_a", pipeline_backend);
  registry.set_default_model(default_backend);
  trace::Job j;
  j.pipeline_name = "pipe_a";
  EXPECT_EQ(registry.lookup(j), pipeline_backend);
  j.pipeline_name = "pipe_b";
  EXPECT_EQ(registry.lookup(j), default_backend);
}

TEST(ModelRegistry, LookupWithoutAnyModelIsNull) {
  ShardedModelRegistry registry;
  trace::Job j;
  j.pipeline_name = "anything";
  EXPECT_EQ(registry.lookup(j), nullptr);
}

TEST(ModelRegistry, CountsModelsAcrossShardsAndCountsSwaps) {
  ShardedModelRegistry registry;
  registry.register_model("a", std::make_shared<CategoryModel>());
  registry.register_model("b", std::make_shared<CategoryModel>());
  registry.register_model("a", std::make_shared<CategoryModel>());  // replace
  EXPECT_EQ(registry.num_models(), 2u);
  EXPECT_FALSE(registry.has_default());
  EXPECT_EQ(registry.swap_count(), 3u);  // every installation counts
}

TEST(ModelRegistry, HotSwapReplacesBackendForNextLookup) {
  ShardedModelRegistry registry(4);
  const auto old_backend = make_gbdt_backend(std::make_shared<CategoryModel>());
  const auto new_backend = make_gbdt_backend(std::make_shared<CategoryModel>());
  registry.register_model("pipe", old_backend);
  trace::Job j;
  j.pipeline_name = "pipe";
  const auto held = registry.lookup(j);  // an in-flight reader's handle
  EXPECT_EQ(held, old_backend);
  registry.register_model("pipe", new_backend);
  EXPECT_EQ(registry.lookup(j), new_backend);
  // The reader that resolved before the swap still holds a live backend.
  EXPECT_EQ(held, old_backend);
  EXPECT_EQ(registry.num_models(), 1u);
}

TEST(ModelRegistry, SingleShardDegeneratesToOneMap) {
  ShardedModelRegistry registry(1);
  EXPECT_EQ(registry.num_shards(), 1u);
  registry.register_model("a", std::make_shared<CategoryModel>());
  registry.register_model("b", std::make_shared<CategoryModel>());
  EXPECT_EQ(registry.num_models(), 2u);
  EXPECT_THROW(ShardedModelRegistry(0), std::invalid_argument);
}

TEST(ByomPolicy, UsesWorkloadModelAndFallback) {
  const auto t = cluster_trace(0, 407);
  const auto split = trace::split_train_test(t);
  auto model = std::make_shared<CategoryModel>(
      CategoryModel::train(split.train.jobs(), small_model_config()));
  auto registry = std::make_shared<ModelRegistry>();
  registry->set_default_model(model);
  policy::AdaptiveConfig cfg;
  cfg.num_categories = model->num_categories();
  auto policy = policy::make_byom_policy(registry, cfg);
  EXPECT_EQ(policy->name(), "BYOM");
  // Drive a few decisions; jobs with a model follow the model's category.
  policy::StorageView view;
  view.ssd_capacity_bytes = 100 * kGiB;
  const auto& probe = split.test.jobs().front();
  policy->decide(probe, view);
  EXPECT_EQ(policy->last_category(), model->predict_category(probe));
}

TEST(ByomPolicy, MissingModelFallsBackToHash) {
  auto registry = std::make_shared<ModelRegistry>();  // no models at all
  policy::AdaptiveConfig cfg;
  cfg.num_categories = 15;
  auto policy = policy::make_byom_policy(registry, cfg);
  trace::Job j;
  j.job_key = "some/job";
  j.arrival_time = 0.0;
  j.lifetime = 60.0;
  j.peak_bytes = kGiB;
  policy::StorageView view;
  view.ssd_capacity_bytes = 100 * kGiB;
  policy->decide(j, view);
  EXPECT_EQ(policy->last_category(),
            make_hash_provider(15)->category(j).value());
}

TEST(PrecomputeCategories, MatchesPerJobRegistryLookup) {
  const auto t = cluster_trace(0, 409);
  const auto split = trace::split_train_test(t);
  auto model = std::make_shared<CategoryModel>(
      CategoryModel::train(split.train.jobs(), small_model_config()));
  auto registry = std::make_shared<ModelRegistry>();
  registry->set_default_model(model);
  const auto& jobs = split.test.jobs();
  const auto hints =
      precompute_categories(*registry, jobs, model->num_categories());
  ASSERT_EQ(hints.size(), jobs.size());
  for (const auto& j : jobs) {
    const auto it = hints.find(j.job_id);
    ASSERT_NE(it, hints.end());
    EXPECT_EQ(it->second, model->predict_category(j));
  }
}

TEST(PrecomputeCategories, ModellessJobsGetHashFallback) {
  ModelRegistry registry;  // no models at all
  trace::Job j;
  j.job_id = 99;
  j.job_key = "some/job";
  const auto hints = precompute_categories(registry, {j}, 15);
  ASSERT_EQ(hints.size(), 1u);
  EXPECT_EQ(hints.at(99), make_hash_provider(15)->category(j).value());
}

TEST(ByomPolicyBatched, MatchesUnbatchedDecisions) {
  const auto t = cluster_trace(0, 410);
  const auto split = trace::split_train_test(t);
  auto model = std::make_shared<CategoryModel>(
      CategoryModel::train(split.train.jobs(), small_model_config()));
  auto registry = std::make_shared<ModelRegistry>();
  registry->set_default_model(model);
  policy::ByomPolicyOptions batched_options;
  batched_options.adaptive.num_categories = model->num_categories();
  batched_options.hints = policy::HintSource::kPrecomputed;
  batched_options.precompute_jobs = &split.test.jobs();
  auto batched = policy::make_byom_policy(registry, batched_options);
  policy::AdaptiveConfig cfg;
  cfg.num_categories = model->num_categories();
  auto unbatched = policy::make_byom_policy(registry, cfg);
  policy::StorageView view;
  view.ssd_capacity_bytes = 100 * kGiB;
  for (const auto& j : split.test.jobs()) {
    batched->decide(j, view);
    unbatched->decide(j, view);
    EXPECT_EQ(batched->last_category(), unbatched->last_category());
  }
}

// --------------------------------------------------------- CategoryProvider

TEST(CategoryProvider, HashProviderDeterministicAndInRange) {
  const auto provider = make_hash_provider(15);
  for (const char* key : {"a/b", "org_ads.pipe.step", "x", "pipe/step/7"}) {
    trace::Job j;
    j.job_key = key;
    const auto c = provider->category(j);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, provider->category(j).value());
    EXPECT_GE(*c, 1);
    EXPECT_LT(*c, 15);
  }
}

// ISSUE-4 range audit: the hash fallback deliberately emits N-1 of the N
// buckets. Category kDoNotAdmitCategory (0) is the labeler's reserved
// negative-saving class — Algorithm 1 never admits it (ACT >= 1), so a
// *guessed* category 0 would permanently bar a job from SSD. This test pins
// the decision: every admittable category [1, N-1] is reachable, and 0 (or
// anything >= N) never appears.
TEST(CategoryProvider, HashProviderCoversExactlyTheAdmittableRange) {
  const int n = 7;
  const auto provider = make_hash_provider(n);
  std::vector<int> seen(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < 4096; ++i) {
    trace::Job j;
    j.job_key = "pipeline_" + std::to_string(i) + "/step";
    const auto c = provider->category(j);
    ASSERT_TRUE(c.has_value());
    ASSERT_GE(*c, 0);
    ASSERT_LE(*c, n);
    ++seen[static_cast<std::size_t>(*c)];
  }
  EXPECT_EQ(seen[static_cast<std::size_t>(kDoNotAdmitCategory)], 0);
  EXPECT_EQ(seen[static_cast<std::size_t>(n)], 0);  // N itself: unreachable
  for (int c = 1; c < n; ++c) {
    EXPECT_GT(seen[static_cast<std::size_t>(c)], 0)
        << "admittable category " << c << " unreachable from the hash";
  }
}

TEST(CategoryProvider, FallbackChainFirstOpinionWins) {
  const auto declines = make_function_provider(
      "declines", [](const trace::Job&) { return std::optional<int>(); });
  const auto three = make_function_provider(
      "three", [](const trace::Job&) { return std::optional<int>(3); });
  const auto seven = make_function_provider(
      "seven", [](const trace::Job&) { return std::optional<int>(7); });
  trace::Job j;

  const auto chain = make_fallback_chain({declines, three, seven});
  EXPECT_EQ(chain->category(j), 3);
  const auto all_decline = make_fallback_chain({declines, declines});
  EXPECT_FALSE(all_decline->category(j).has_value());
  const auto empty = make_fallback_chain({});
  EXPECT_FALSE(empty->category(j).has_value());
}

TEST(CategoryProvider, PrecomputedDeclinesOutsideTable) {
  auto hints = std::make_shared<CategoryHints>();
  (*hints)[7] = 4;
  const auto provider = make_precomputed_provider(std::move(hints));
  trace::Job j;
  j.job_id = 7;
  EXPECT_EQ(provider->category(j), 4);
  j.job_id = 8;
  EXPECT_FALSE(provider->category(j).has_value());
}

TEST(NoisyProvider, ZeroNoiseIsIdentity) {
  const auto t = cluster_trace(0, 412, 6, 2.0);
  const auto inner = make_hash_provider(15);
  const auto noisy = make_noisy_provider(inner, 0.0, 99, 15);
  for (const auto& j : t.jobs()) {
    EXPECT_EQ(noisy->category(j), inner->category(j));
  }
}

TEST(NoisyProvider, SeededFlipsAreDeterministicAndAlwaysWrong) {
  const auto t = cluster_trace(0, 413);
  const auto inner = make_hash_provider(15);
  const auto noisy_a = make_noisy_provider(inner, 0.3, 42, 15);
  const auto noisy_b = make_noisy_provider(inner, 0.3, 42, 15);
  const auto noisy_c = make_noisy_provider(inner, 0.3, 43, 15);
  std::size_t flipped = 0, differs_by_seed = 0;
  for (const auto& j : t.jobs()) {
    const auto original = inner->category(j);
    const auto a = noisy_a->category(j);
    EXPECT_EQ(a, noisy_b->category(j));  // same seed: same flips
    ASSERT_TRUE(a.has_value());
    EXPECT_GE(*a, 0);
    EXPECT_LT(*a, 15);
    if (a != original) ++flipped;             // a flip always changes the hint
    if (a != noisy_c->category(j)) ++differs_by_seed;
  }
  // ~30% of hints flipped (binomial; generous tolerance).
  const double fraction =
      static_cast<double>(flipped) / static_cast<double>(t.size());
  EXPECT_NEAR(fraction, 0.3, 0.07);
  EXPECT_GT(differs_by_seed, 0u);  // a different seed flips different jobs
}

TEST(NoisyProvider, PassesThroughDeclines) {
  const auto declines = make_function_provider(
      "declines", [](const trace::Job&) { return std::optional<int>(); });
  const auto noisy = make_noisy_provider(declines, 1.0, 1, 15);
  trace::Job j;
  EXPECT_FALSE(noisy->category(j).has_value());
}

// -------------------------------------------------- unified make_byom_policy

TEST(ByomPolicyOptions, PrecomputedMatchesSyncDecisions) {
  const auto t = cluster_trace(0, 414);
  const auto split = trace::split_train_test(t);
  auto model = std::make_shared<CategoryModel>(
      CategoryModel::train(split.train.jobs(), small_model_config()));
  auto registry = std::make_shared<ModelRegistry>();
  registry->set_default_model(model);

  policy::ByomPolicyOptions sync_options;
  sync_options.adaptive.num_categories = model->num_categories();
  auto sync = policy::make_byom_policy(registry, sync_options);

  policy::ByomPolicyOptions batched_options = sync_options;
  batched_options.hints = policy::HintSource::kPrecomputed;
  batched_options.precompute_jobs = &split.test.jobs();
  auto batched = policy::make_byom_policy(registry, batched_options);

  policy::StorageView view;
  view.ssd_capacity_bytes = 100 * kGiB;
  for (const auto& j : split.test.jobs()) {
    sync->decide(j, view);
    batched->decide(j, view);
    EXPECT_EQ(batched->last_category(), sync->last_category());
  }
}

TEST(ByomPolicyOptions, CustomProviderFrontsTheChain) {
  auto registry = std::make_shared<ModelRegistry>();  // no models
  policy::ByomPolicyOptions options;
  options.hints = policy::HintSource::kCustom;
  options.custom_provider = make_function_provider(
      "const", [](const trace::Job&) { return std::optional<int>(9); });
  options.name = "custom";
  auto policy = policy::make_byom_policy(registry, options);
  EXPECT_EQ(policy->name(), "custom");
  trace::Job j;
  j.job_key = "some/job";
  j.lifetime = 60.0;
  j.peak_bytes = kGiB;
  policy::StorageView view;
  view.ssd_capacity_bytes = 100 * kGiB;
  policy->decide(j, view);
  EXPECT_EQ(policy->last_category(), 9);
}

TEST(ByomPolicyOptions, InvalidSelectionsThrow) {
  auto registry = std::make_shared<ModelRegistry>();
  policy::ByomPolicyOptions precomputed;
  precomputed.hints = policy::HintSource::kPrecomputed;  // no precompute_jobs
  EXPECT_THROW(policy::make_byom_policy(registry, precomputed),
               std::invalid_argument);
  policy::ByomPolicyOptions custom;
  custom.hints = policy::HintSource::kCustom;  // no custom_provider
  EXPECT_THROW(policy::make_byom_policy(registry, custom), std::invalid_argument);
  EXPECT_THROW(policy::make_byom_policy(nullptr, policy::ByomPolicyOptions{}),
               std::invalid_argument);
}

TEST(TrainByomModel, WrapperMatchesDirectTraining) {
  const auto t = cluster_trace(1, 408);
  const auto split = trace::split_train_test(t);
  const auto cfg = small_model_config();
  const auto a = train_byom_model(split.train.jobs(), cfg);
  const auto b = CategoryModel::train(split.train.jobs(), cfg);
  for (const auto& j : split.test.jobs()) {
    EXPECT_EQ(a.predict_category(j), b.predict_category(j));
  }
}

}  // namespace
}  // namespace byom::core
