#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/category_provider.h"
#include "core/staleness.h"
#include "sim/sim_clock.h"

namespace byom::core {
namespace {

StalenessConfig config_with(double start, double period, double half_life) {
  StalenessConfig cfg;
  cfg.epoch_start = start;
  cfg.retrain_period = period;
  cfg.half_life = half_life;
  cfg.seed = 42;
  cfg.num_categories = 15;
  return cfg;
}

// Adapts the simulator's clock to the core-layer TimeFn the stale provider
// consumes (core never names sim::SimClock; see tools/layers.json).
TimeFn clock_fn(std::shared_ptr<const sim::SimClock> clock) {
  return [clock = std::move(clock)] { return clock->now(); };
}

trace::Job job_with_id(std::uint64_t id) {
  trace::Job j;
  j.job_id = id;
  j.job_key = "pipe/" + std::to_string(id);
  return j;
}

TEST(StalenessSchedule, AgeGrowsFromEpochStart) {
  StalenessSchedule s(config_with(100.0, 0.0, 3600.0));
  EXPECT_DOUBLE_EQ(s.age(50.0), 0.0);  // before training: clamped
  EXPECT_DOUBLE_EQ(s.age(100.0), 0.0);
  EXPECT_DOUBLE_EQ(s.age(4100.0), 4000.0);
}

TEST(StalenessSchedule, RetrainResetsAge) {
  StalenessSchedule s(config_with(0.0, 3600.0, 3600.0));
  EXPECT_DOUBLE_EQ(s.age(3000.0), 3000.0);
  s.on_retrain(3600.0);
  EXPECT_DOUBLE_EQ(s.age(3700.0), 100.0);
  EXPECT_EQ(s.retrain_count(), 1u);
  EXPECT_THROW(s.on_retrain(1000.0), std::invalid_argument);
}

TEST(StalenessSchedule, CorruptionProbabilityFollowsHalfLife) {
  StalenessSchedule s(config_with(0.0, 0.0, 3600.0));
  EXPECT_DOUBLE_EQ(s.corruption_probability(0.0), 0.0);
  EXPECT_NEAR(s.corruption_probability(3600.0), 0.5, 1e-12);
  EXPECT_NEAR(s.corruption_probability(2.0 * 3600.0), 0.75, 1e-12);
  // Disabled decay never corrupts.
  StalenessSchedule off(config_with(0.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(off.corruption_probability(1e9), 0.0);
}

TEST(StalenessSchedule, RetrainTimesCoverTheWindow) {
  StalenessSchedule s(config_with(1000.0, 500.0, 3600.0));
  const auto times = s.retrain_times(1000.0, 3000.0);
  EXPECT_EQ(times, (std::vector<double>{1500.0, 2000.0, 2500.0, 3000.0}));
  // Window starting mid-epoch picks up the next multiple.
  const auto offset = s.retrain_times(1700.0, 2600.0);
  EXPECT_EQ(offset, (std::vector<double>{2000.0, 2500.0}));
  // No cadence, no events.
  StalenessSchedule never(config_with(0.0, 0.0, 3600.0));
  EXPECT_TRUE(never.retrain_times(0.0, 1e9).empty());
}

TEST(StaleProvider, FreshModelPassesHintsThrough) {
  auto clock = std::make_shared<sim::SimClock>();
  auto schedule =
      std::make_shared<StalenessSchedule>(config_with(0.0, 0.0, 3600.0));
  auto inner = make_function_provider(
      "const", [](const trace::Job&) { return std::optional<int>(7); });
  auto provider = make_stale_provider(inner, schedule, clock_fn(clock));
  for (std::uint64_t id = 0; id < 50; ++id) {
    EXPECT_EQ(provider->category(job_with_id(id)), 7);
  }
}

TEST(StaleProvider, DeclinedHintsPassThroughUntouched) {
  auto clock = std::make_shared<sim::SimClock>();
  clock->advance_to(1e9);  // maximally stale
  auto schedule =
      std::make_shared<StalenessSchedule>(config_with(0.0, 0.0, 3600.0));
  auto inner = make_function_provider(
      "decline", [](const trace::Job&) { return std::optional<int>(); });
  auto provider = make_stale_provider(inner, schedule, clock_fn(clock));
  EXPECT_FALSE(provider->category(job_with_id(1)).has_value());
}

TEST(StaleProvider, CorruptedSetsNestAsAgeGrows) {
  // The per-job coin depends only on (seed, job_id), so jobs corrupted at a
  // younger age stay corrupted at any older age — degradation is smooth and
  // monotone across a cadence sweep.
  auto schedule =
      std::make_shared<StalenessSchedule>(config_with(0.0, 0.0, 3600.0));
  auto inner = make_function_provider(
      "const", [](const trace::Job&) { return std::optional<int>(7); });
  const auto corrupted_at = [&](double age) {
    auto clock = std::make_shared<sim::SimClock>();
    clock->advance_to(age);
    auto provider = make_stale_provider(inner, schedule, clock_fn(clock));
    std::set<std::uint64_t> ids;
    for (std::uint64_t id = 0; id < 500; ++id) {
      if (provider->category(job_with_id(id)) != 7) ids.insert(id);
    }
    return ids;
  };
  const auto young = corrupted_at(1800.0);
  const auto old = corrupted_at(4.0 * 3600.0);
  EXPECT_GT(young.size(), 0u);
  EXPECT_GT(old.size(), young.size());
  for (const auto id : young) {
    EXPECT_TRUE(old.count(id)) << "job " << id
                               << " healed as the model aged";
  }
  // Corrupted hints land in the hash fallback's range [1, N-1].
  auto clock = std::make_shared<sim::SimClock>();
  clock->advance_to(1e9);
  auto provider = make_stale_provider(inner, schedule, clock_fn(clock));
  for (std::uint64_t id = 0; id < 100; ++id) {
    const auto c = provider->category(job_with_id(id));
    ASSERT_TRUE(c.has_value());
    EXPECT_GE(*c, 1);
    EXPECT_LT(*c, 15);
  }
}

TEST(StaleProvider, RejectsNullArguments) {
  auto clock = std::make_shared<sim::SimClock>();
  auto schedule =
      std::make_shared<StalenessSchedule>(config_with(0.0, 0.0, 3600.0));
  auto inner = make_hash_provider(15);
  EXPECT_THROW(make_stale_provider(nullptr, schedule, clock_fn(clock)),
               std::invalid_argument);
  EXPECT_THROW(make_stale_provider(inner, nullptr, clock_fn(clock)),
               std::invalid_argument);
  EXPECT_THROW(make_stale_provider(inner, schedule, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace byom::core
