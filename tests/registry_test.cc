// ShardedModelRegistry + ModelBackend suite (ISSUE 4): pluggable backends
// trained from the same job history, batched-vs-per-job parity through
// precompute_categories, threaded hot-swap safety (run under the CI
// ThreadSanitizer job), and retrain events installing freshly trained
// backends on the virtual timeline.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/byom.h"
#include "core/model_backend.h"
#include "core/model_registry.h"
#include "harness/experiment.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace byom::core {
namespace {

trace::Trace cluster_trace(std::uint32_t cluster, std::uint64_t seed,
                           int pipelines = 14, double days = 6.0) {
  trace::GeneratorConfig cfg = trace::canonical_cluster_config(cluster, seed);
  cfg.num_pipelines = pipelines;
  cfg.duration = days * 86400.0;
  return trace::generate_cluster_trace(cfg);
}

BackendConfig small_backend_config(int categories = 8) {
  BackendConfig cfg;
  cfg.model.num_categories = categories;
  cfg.model.gbdt.num_rounds = 10;
  cfg.model.gbdt.max_trees_total = categories * 10;
  return cfg;
}

const std::vector<BackendKind> kAllKinds = {
    BackendKind::kGbdt, BackendKind::kLogistic, BackendKind::kFrequency};

// One trained fixture shared across tests (training the GBDT once).
struct BackendFixture {
  trace::TrainTestSplit split;
  std::vector<ModelBackendPtr> backends;  // one per kAllKinds entry

  BackendFixture() {
    split = trace::split_train_test(cluster_trace(0, 616));
    for (const BackendKind kind : kAllKinds) {
      backends.push_back(
          train_backend(kind, split.train.jobs(), small_backend_config()));
    }
  }
};

BackendFixture& fixture() {
  static BackendFixture f;
  return f;
}

// ------------------------------------------------------------ ModelBackend

TEST(ModelBackend, KindsTrainAndPredictInRange) {
  auto& f = fixture();
  for (std::size_t k = 0; k < kAllKinds.size(); ++k) {
    const auto& backend = f.backends[k];
    EXPECT_EQ(backend->name(), backend_kind_name(kAllKinds[k]));
    EXPECT_EQ(backend->num_categories(), 8);
    for (const auto& job : f.split.test.jobs()) {
      const int c = backend->predict_category(job);
      EXPECT_GE(c, 0);
      EXPECT_LT(c, backend->num_categories());
    }
  }
}

TEST(ModelBackend, BatchMatchesPerJobForEveryKind) {
  auto& f = fixture();
  const auto& jobs = f.split.test.jobs();
  for (const auto& backend : f.backends) {
    const auto batched = backend->predict_batch(jobs);
    ASSERT_EQ(batched.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(batched[i], backend->predict_category(jobs[i]))
          << backend->name() << " diverges at job " << i;
    }
  }
}

// Each backend must carry real signal: clearly better than uniform guessing
// against the (shared) labeler's ground truth. This is what makes the
// fig18 backend-mix sweep land between the hash floor and the oracle.
TEST(ModelBackend, EveryKindBeatsRandomGuessing) {
  auto& f = fixture();
  const auto truth =
      CategoryLabeler::fit(f.split.train.jobs(), 8);
  for (const auto& backend : f.backends) {
    std::size_t hits = 0;
    for (const auto& job : f.split.test.jobs()) {
      if (backend->predict_category(job) == truth.category_of(job)) ++hits;
    }
    const double accuracy = static_cast<double>(hits) /
                            static_cast<double>(f.split.test.size());
    // Uniform guessing over 8 classes sits at 0.125; every backend must
    // clear it by a wide margin on this held-out split.
    EXPECT_GT(accuracy, 0.19) << backend->name();
  }
}

TEST(ModelBackend, TrainingRejectsEmptyHistory) {
  for (const BackendKind kind : kAllKinds) {
    EXPECT_THROW(train_backend(kind, {}, small_backend_config()),
                 std::invalid_argument);
  }
  EXPECT_THROW(make_gbdt_backend(nullptr), std::invalid_argument);
}

// ----------------------------------------------- precompute_categories parity

// The ISSUE-4 acceptance parity: every backend kind round-trips through the
// registry-grouped batched path bit-identically to its per-job path.
TEST(PrecomputeParity, EveryBackendRoundTripsBitIdentically) {
  auto& f = fixture();
  const auto& jobs = f.split.test.jobs();
  for (const auto& backend : f.backends) {
    auto registry = std::make_shared<ShardedModelRegistry>();
    registry->set_default_model(backend);
    const auto hints = precompute_categories(*registry, jobs, 8);
    ASSERT_EQ(hints.size(), jobs.size());
    for (const auto& job : jobs) {
      EXPECT_EQ(hints.at(job.job_id), backend->predict_category(job))
          << backend->name();
    }
  }
}

// A heterogeneous registry: each pipeline override answers its own jobs,
// the default answers the rest, and the batched pass groups per backend.
TEST(PrecomputeParity, MixedFleetGroupsPerBackend) {
  auto& f = fixture();
  const auto& jobs = f.split.test.jobs();
  ASSERT_GE(jobs.size(), 2u);
  const std::string pipe_a = jobs.front().pipeline_name;

  auto registry = std::make_shared<ShardedModelRegistry>();
  registry->set_default_model(f.backends[0]);   // gbdt default
  registry->register_model(pipe_a, f.backends[2]);  // frequency override

  const auto hints = precompute_categories(*registry, jobs, 8);
  for (const auto& job : jobs) {
    const auto& expected =
        job.pipeline_name == pipe_a ? f.backends[2] : f.backends[0];
    EXPECT_EQ(hints.at(job.job_id), expected->predict_category(job));
  }
}

// --------------------------------------------------------- threaded hot-swap

// Readers lookup()+predict while a writer re-registers every pipeline over
// and over: no torn reads, every resolved backend stays alive and answers
// in range. TSan (CI job `tsan`) verifies the data-race freedom claim.
TEST(ShardedRegistryThreaded, LookupsRaceRegistrationsSafely) {
  auto& f = fixture();
  const auto& jobs = f.split.test.jobs();

  // The distinct pipelines of the trace, each hot-swapped every round.
  const std::vector<std::string> pipelines =
      trace::distinct_pipelines(f.split.train);
  ASSERT_GE(pipelines.size(), 4u);

  ShardedModelRegistry registry;
  registry.set_default_model(f.backends[0]);
  for (const auto& pipeline : pipelines) {
    registry.register_model(pipeline, f.backends[1]);
  }

  constexpr int kRounds = 200;
  std::atomic<bool> writer_done{false};
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = static_cast<std::size_t>(r);
      // A minimum iteration count keeps the race meaningful (and the
      // lookups > 0 assertion sound) even if the writer finishes before
      // this reader is first scheduled — a real risk on a loaded
      // single-core CI runner under TSan.
      std::size_t iterations = 0;
      // atomic: acquire — pairs with the writer's release store below
      while (!writer_done.load(std::memory_order_acquire) ||
             iterations < 64) {
        const auto& job = jobs[i % jobs.size()];
        const ModelBackendPtr backend = registry.lookup(job);
        ++iterations;
        if (!backend) {
          failures.fetch_add(1);
          continue;
        }
        const int c = backend->predict_category(job);
        if (c < 0 || c >= backend->num_categories()) failures.fetch_add(1);
        lookups.fetch_add(1);
        i += 7;  // stride so readers disagree on the hot shard
      }
    });
  }

  std::thread writer([&] {
    for (int round = 0; round < kRounds; ++round) {
      const auto& fresh = f.backends[static_cast<std::size_t>(round) % 3];
      for (const auto& pipeline : pipelines) {
        registry.register_model(pipeline, fresh);
      }
      registry.set_default_model(fresh);
    }
    // atomic: release — pairs with the readers' acquire loop above
    writer_done.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(lookups.load(), 0u);
  EXPECT_EQ(registry.swap_count(),
            1 + pipelines.size() +
                static_cast<std::uint64_t>(kRounds) * (pipelines.size() + 1));
  EXPECT_EQ(registry.num_models(), pipelines.size());
}

// ------------------------------------------------------ epoch publication

// Every successful installation — per-pipeline or default — advances the
// global epoch, so readers can detect "registry changed since I looked"
// without touching any shard.
TEST(EpochPublication, EpochAdvancesOnEveryInstall) {
  auto& f = fixture();
  ShardedModelRegistry registry;
  EXPECT_EQ(registry.epoch(), 0u);
  registry.set_default_model(f.backends[0]);
  EXPECT_EQ(registry.epoch(), 1u);
  registry.register_model("pipeline-a", f.backends[1]);
  EXPECT_EQ(registry.epoch(), 2u);
  // Re-registering the same pipeline is still a publication.
  registry.register_model("pipeline-a", f.backends[2]);
  EXPECT_EQ(registry.epoch(), 3u);
  EXPECT_EQ(registry.epoch(), registry.swap_count());
}

// The RCU grace-period contract: a reader that resolved a backend before a
// hot-swap keeps a live handle until it drops it — the superseded backend
// (the canary, tracked by weak_ptr) is reclaimed only after the last
// in-flight reader releases it, never under the reader's feet.
TEST(EpochPublication, HotSwapReclaimsOldBackendAfterLastReaderDrops) {
  auto& f = fixture();
  ShardedModelRegistry registry;

  // A canary backend owned only by the registry once registered.
  ModelBackendPtr canary = train_backend(
      BackendKind::kFrequency, f.split.train.jobs(), small_backend_config());
  std::weak_ptr<const ModelBackend> watch = canary;
  trace::Job job = f.split.test.jobs().front();
  const std::string pipeline = job.pipeline_name;
  registry.register_model(pipeline, std::move(canary));

  const std::uint64_t epoch_before = registry.epoch();
  ModelBackendPtr in_flight = registry.lookup(job);
  ASSERT_TRUE(in_flight);
  ASSERT_EQ(in_flight.get(), watch.lock().get());

  // Hot-swap while the reader still holds its handle.
  registry.register_model(pipeline, f.backends[0]);
  EXPECT_GT(registry.epoch(), epoch_before);  // publication is observable
  // New lookups resolve the replacement immediately...
  EXPECT_EQ(registry.lookup(job).get(), f.backends[0].get());
  // ...while the in-flight reader's backend is alive and still answers.
  ASSERT_FALSE(watch.expired());
  const int category = in_flight->predict_category(job);
  EXPECT_GE(category, 0);
  EXPECT_LT(category, in_flight->num_categories());

  // Grace period ends when the last reader drops the handle: the canary is
  // reclaimed (nothing else references it).
  in_flight.reset();
  EXPECT_TRUE(watch.expired());
}

// ------------------------------------------- retrain installs fresh backends

// A retrain event on the virtual timeline must *install* a freshly trained
// backend into the serving registry (hot-swap observable via swap_count and
// pointer identity) and reset the staleness age — not merely bump a
// counter.
TEST(RetrainInstallation, EventsHotSwapFreshBackendsIntoRegistry) {
  auto& f = fixture();
  sim::MethodFactory factory(f.split.train, cost::Rates{},
                             small_backend_config().model);

  sim::MakeOptions options;
  options.backend = BackendKind::kFrequency;  // cheap genuine retrains
  options.hint_latency = 0.0;
  options.retrain_period = 86400.0;  // daily over a multi-day test split
  const auto capacity = sim::quota_capacity(f.split.test, 0.05);
  const auto context = factory.make_context(
      sim::MethodId::kAdaptiveServedLatency, f.split.test, capacity, options);
  ASSERT_NE(context.registry, nullptr);
  ASSERT_NE(context.staleness, nullptr);

  const std::uint64_t swaps_before = context.registry->swap_count();
  trace::Job probe = f.split.test.jobs().front();
  const ModelBackendPtr deployed = context.registry->lookup(probe);
  ASSERT_NE(deployed, nullptr);

  sim::SimConfig config;
  config.ssd_capacity_bytes = capacity;
  config.clock = context.clock;
  config.hint_service = context.hint_service;
  config.staleness = context.staleness;
  const auto result = sim::simulate(f.split.test, *context.policy, config);

  EXPECT_GT(result.retrain_events, 0u);
  EXPECT_EQ(context.staleness->retrain_count(), result.retrain_events);
  // Every retrain event installed exactly one fresh default backend.
  EXPECT_EQ(context.registry->swap_count(),
            swaps_before + result.retrain_events);
  const ModelBackendPtr now_serving = context.registry->lookup(probe);
  ASSERT_NE(now_serving, nullptr);
  EXPECT_NE(now_serving, deployed) << "retrain did not swap the backend";
  // The freshly installed backend serves the same label space.
  EXPECT_EQ(now_serving->num_categories(), deployed->num_categories());
  // And the age really restarted: the current epoch is the last retrain,
  // not the deployment epoch.
  EXPECT_GT(context.staleness->current_epoch_start(),
            f.split.test.start_time());
}

// Per-pipeline overrides get reinstalled too, and the heterogeneous cell
// stays deterministic: two identical runs produce identical placements.
TEST(RetrainInstallation, HeterogeneousFleetRetrainsDeterministically) {
  auto& f = fixture();
  sim::MethodFactory factory(f.split.train, cost::Rates{},
                             small_backend_config().model);

  std::vector<std::string> pipelines =
      trace::distinct_pipelines(f.split.train);
  ASSERT_GE(pipelines.size(), 2u);
  pipelines.resize(2);

  sim::MakeOptions options;
  options.backend = BackendKind::kFrequency;
  options.pipeline_backends = {
      {pipelines[0], BackendKind::kLogistic},
      {pipelines[1], BackendKind::kFrequency}};
  options.retrain_period = 2.0 * 86400.0;
  const auto capacity = sim::quota_capacity(f.split.test, 0.05);

  const auto run = [&] {
    const auto context =
        factory.make_context(sim::MethodId::kAdaptiveServedLatency,
                             f.split.test, capacity, options);
    sim::SimConfig config;
    config.ssd_capacity_bytes = capacity;
    config.clock = context.clock;
    config.hint_service = context.hint_service;
    config.staleness = context.staleness;
    const auto result = sim::simulate(f.split.test, *context.policy, config);
    // default + 2 overrides at build, then one full reinstall per retrain.
    EXPECT_EQ(context.registry->swap_count(),
              3 + result.retrain_events * 3);
    return result;
  };

  const auto first = run();
  const auto second = run();
  EXPECT_GT(first.retrain_events, 0u);
  EXPECT_EQ(first.tco_actual, second.tco_actual);
  EXPECT_EQ(first.jobs_scheduled_ssd, second.jobs_scheduled_ssd);
  EXPECT_EQ(first.retrain_events, second.retrain_events);
}

}  // namespace
}  // namespace byom::core
