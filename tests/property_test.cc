// Parameterized property tests: invariants that must hold across archetype,
// quota, category-count, and configuration sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "core/category_provider.h"
#include "core/labeler.h"
#include "oracle/greedy_oracle.h"
#include "policy/adaptive.h"
#include "policy/first_fit.h"
#include "policy/oracle_replay.h"
#include "harness/experiment.h"
#include "trace/archetypes.h"
#include "trace/generator.h"

namespace byom {
namespace {

using common::kGiB;

trace::Trace shared_trace() {
  static const trace::Trace t = [] {
    trace::GeneratorConfig cfg = trace::canonical_cluster_config(0, 909);
    cfg.num_pipelines = 14;
    cfg.duration = 6.0 * 86400.0;
    return trace::generate_cluster_trace(cfg);
  }();
  return t;
}

// ------------------------------------------------ archetype cost properties

// Every archetype must generate jobs whose mean TCO-saving sign matches its
// intended SSD/HDD suitability (DESIGN.md workload inventory).
class ArchetypeSuitability
    : public ::testing::TestWithParam<trace::ArchetypeId> {};

TEST_P(ArchetypeSuitability, SavingSignMatchesIntent) {
  const auto id = GetParam();
  trace::GeneratorConfig cfg;
  cfg.num_pipelines = 10;
  cfg.duration = 3.0 * 86400.0;
  cfg.seed = 1234 + static_cast<std::uint64_t>(id);
  std::vector<double> w(static_cast<std::size_t>(trace::ArchetypeId::kCount),
                        0.0);
  w[static_cast<std::size_t>(id)] = 1.0;
  cfg.archetype_weights = w;
  const auto t = trace::generate_cluster_trace(cfg);
  ASSERT_GT(t.size(), 50u);
  double total_saving = 0.0;
  for (const auto& j : t.jobs()) total_saving += j.tco_saving();

  switch (id) {
    case trace::ArchetypeId::kStreamingShuffle:
    case trace::ArchetypeId::kDbQuery:
    case trace::ArchetypeId::kSimulation:
    case trace::ArchetypeId::kCompressUpload:
      EXPECT_GT(total_saving, 0.0) << "SSD-suitable archetype lost money";
      break;
    case trace::ArchetypeId::kMlCheckpoint:
    case trace::ArchetypeId::kVideoProcessing:
    case trace::ArchetypeId::kMlTrainingCkpt:
      EXPECT_LT(total_saving, 0.0) << "HDD-suitable archetype saved money";
      break;
    case trace::ArchetypeId::kLogProcessing:
      // Middling by design: neither strongly positive nor catastrophic.
      EXPECT_LT(std::abs(total_saving) / static_cast<double>(t.size()), 0.05);
      break;
    default:
      FAIL() << "unhandled archetype";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchetypes, ArchetypeSuitability,
    ::testing::Values(trace::ArchetypeId::kStreamingShuffle,
                      trace::ArchetypeId::kDbQuery,
                      trace::ArchetypeId::kLogProcessing,
                      trace::ArchetypeId::kSimulation,
                      trace::ArchetypeId::kVideoProcessing,
                      trace::ArchetypeId::kMlCheckpoint,
                      trace::ArchetypeId::kCompressUpload,
                      trace::ArchetypeId::kMlTrainingCkpt));

// ------------------------------------------------------- oracle vs quota

class OracleQuota : public ::testing::TestWithParam<double> {};

TEST_P(OracleQuota, SelectionWithinCapacityAndValuePositive) {
  const double quota = GetParam();
  const auto t = shared_trace();
  const auto cap = sim::quota_capacity(t, quota);
  const cost::CostModel model;
  const auto r =
      oracle::solve_greedy(t.jobs(), cap, oracle::Objective::kTco, model);
  EXPECT_GE(r.objective_value, 0.0);
  // No negative-saving job is ever selected.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (r.on_ssd[i]) {
      EXPECT_GE(t.jobs()[i].tco_saving(), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(QuotaSweep, OracleQuota,
                         ::testing::Values(0.001, 0.01, 0.05, 0.25, 1.0));

// ------------------------------------------------------- labeler properties

class LabelerCategories : public ::testing::TestWithParam<int> {};

TEST_P(LabelerCategories, EquiDepthBalancedLinearLogNot) {
  const int n = GetParam();
  const auto t = shared_trace();
  const auto equi =
      core::CategoryLabeler::fit(t.jobs(), n, core::LabelSpacing::kEquiDepth);
  const auto linear =
      core::CategoryLabeler::fit(t.jobs(), n, core::LabelSpacing::kLinear);

  const auto share = [&](const core::CategoryLabeler& labeler) {
    const auto h = labeler.category_histogram(t.jobs());
    int total = 0, biggest = 0;
    for (std::size_t c = 1; c < h.size(); ++c) {
      total += h[c];
      biggest = std::max(biggest, h[c]);
    }
    return total ? static_cast<double>(biggest) / total : 1.0;
  };
  // Equi-depth: every density class holds ~1/(n-1) of cost-saving jobs.
  EXPECT_LT(share(equi), 2.5 / (n - 1));
  // Linear spacing concentrates the mass (paper: "heavily imbalanced").
  EXPECT_GT(share(linear), share(equi));
}

TEST_P(LabelerCategories, CategoriesAreMonotoneInDensity) {
  const int n = GetParam();
  const auto t = shared_trace();
  const auto labeler = core::CategoryLabeler::fit(t.jobs(), n);
  // For cost-saving jobs, higher density can never mean a lower category.
  const auto& jobs = t.jobs();
  for (std::size_t i = 0; i + 1 < jobs.size(); i += 2) {
    const auto& a = jobs[i];
    const auto& b = jobs[i + 1];
    if (a.tco_saving() < 0 || b.tco_saving() < 0) continue;
    if (a.io_density <= b.io_density) {
      EXPECT_LE(labeler.category_of(a), labeler.category_of(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CategoryCounts, LabelerCategories,
                         ::testing::Values(5, 10, 15, 25));

// --------------------------------------------------- adaptive policy sweeps

struct AdaptiveSweepParam {
  int num_categories;
  double lower, upper;
};

class AdaptiveSweep : public ::testing::TestWithParam<AdaptiveSweepParam> {};

TEST_P(AdaptiveSweep, ActAlwaysWithinBounds) {
  const auto param = GetParam();
  policy::AdaptiveConfig cfg;
  cfg.num_categories = param.num_categories;
  cfg.spillover_lower = param.lower;
  cfg.spillover_upper = param.upper;
  cfg.decision_interval = 50.0;
  cfg.lookback_window = 200.0;
  common::Rng rng(42);
  policy::AdaptiveCategoryPolicy policy(
      "sweep", core::make_hash_provider(param.num_categories), cfg);
  policy::StorageView view;
  view.ssd_capacity_bytes = kGiB;
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.uniform(10.0, 120.0);
    trace::Job j;
    j.job_id = static_cast<std::uint64_t>(i);
    j.job_key = "k" + std::to_string(i % 17);
    j.arrival_time = t;
    j.lifetime = rng.uniform(30.0, 600.0);
    j.peak_bytes = kGiB / 4;
    j.tcio_hdd = rng.uniform(0.0, 2.0);
    const auto device = policy.decide(j, view);
    policy::PlacementOutcome out;
    out.scheduled = device;
    out.spill_fraction = rng.bernoulli(0.5) ? rng.uniform(0.0, 1.0) : 0.0;
    policy.on_placed(j, out);
    EXPECT_GE(policy.current_act(), 1);
    EXPECT_LE(policy.current_act(), param.num_categories - 1);
  }
  for (const auto& rec : policy.decision_log()) {
    EXPECT_GE(rec.spillover_pct, 0.0);
    EXPECT_LE(rec.spillover_pct, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AdaptiveSweep,
    ::testing::Values(AdaptiveSweepParam{2, 0.01, 0.15},
                      AdaptiveSweepParam{5, 0.005, 0.03},
                      AdaptiveSweepParam{15, 0.01, 0.15},
                      AdaptiveSweepParam{35, 0.05, 0.25}));

// ----------------------------------------------------- simulator properties

class SimulatorQuota : public ::testing::TestWithParam<double> {};

TEST_P(SimulatorQuota, AccountingConservation) {
  const double quota = GetParam();
  const auto t = shared_trace();
  const auto cap = sim::quota_capacity(t, quota);
  policy::FirstFitPolicy policy;
  sim::SimConfig cfg;
  cfg.ssd_capacity_bytes = cap;
  cfg.record_outcomes = true;
  const auto r = sim::simulate(t, policy, cfg);
  // The all-HDD baseline never depends on the policy or the quota.
  EXPECT_NEAR(r.tco_all_hdd, t.total_cost_all_hdd(), 1e-6);
  // Actual TCIO never exceeds the all-HDD TCIO, and is non-negative.
  EXPECT_LE(r.tcio_actual_seconds, r.tcio_all_hdd_seconds * (1 + 1e-12));
  EXPECT_GE(r.tcio_actual_seconds, 0.0);
  // FirstFit never spills: it only admits jobs that fully fit.
  for (const auto& o : r.outcomes) {
    EXPECT_DOUBLE_EQ(o.spill_fraction, 0.0);
  }
  // Peak usage respects the configured capacity.
  EXPECT_LE(r.peak_ssd_used_bytes, cap);
}

TEST_P(SimulatorQuota, OracleSavingsMatchSimulatedSavings) {
  // The oracle's objective value must equal the simulator's realized TCO
  // saving when its decisions are replayed (no hidden cost leakage).
  const double quota = GetParam();
  const auto t = shared_trace();
  const auto cap = sim::quota_capacity(t, quota);
  const cost::CostModel model;
  const auto solution =
      oracle::solve_greedy(t.jobs(), cap, oracle::Objective::kTco, model);
  policy::OracleReplayPolicy policy("oracle", t.jobs(), solution);
  sim::SimConfig cfg;
  cfg.ssd_capacity_bytes = cap;
  const auto r = sim::simulate(t, policy, cfg);
  const double simulated_saving = r.tco_all_hdd - r.tco_actual;
  EXPECT_NEAR(simulated_saving, solution.objective_value,
              solution.objective_value * 0.01 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(QuotaSweep, SimulatorQuota,
                         ::testing::Values(0.005, 0.05, 0.5));

// ----------------------------------------------------------- determinism

TEST(Determinism, EndToEndPipelineIsReproducible) {
  auto run_once = [] {
    trace::GeneratorConfig cfg = trace::canonical_cluster_config(1, 777);
    cfg.num_pipelines = 8;
    cfg.duration = 4.0 * 86400.0;
    const auto split =
        trace::split_train_test(trace::generate_cluster_trace(cfg));
    core::CategoryModelConfig mc;
    mc.num_categories = 6;
    mc.gbdt.num_rounds = 6;
    sim::MethodFactory factory(split.train, cost::Rates{}, mc);
    const auto cap = sim::quota_capacity(split.test, 0.05);
    return sim::run_method(factory, sim::MethodId::kAdaptiveRanking,
                           split.test, cap)
        .tco_savings_pct();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace byom
