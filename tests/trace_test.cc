#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <unordered_map>

#include "common/time_util.h"
#include "common/units.h"
#include "trace/archetypes.h"
#include "trace/generator.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace byom::trace {
namespace {

Trace small_trace() {
  GeneratorConfig cfg;
  cfg.cluster_id = 1;
  cfg.seed = 99;
  cfg.num_pipelines = 12;
  cfg.duration = 4.0 * common::kSecondsPerDay;
  return generate_cluster_trace(cfg);
}

Job make_job(double arrival, double lifetime, std::uint64_t bytes) {
  Job j;
  static std::uint64_t next_id = 1;
  j.job_id = next_id++;
  j.arrival_time = arrival;
  j.lifetime = lifetime;
  j.peak_bytes = bytes;
  j.io.bytes_written = bytes;
  j.io.bytes_read = bytes;
  j.compute_costs(cost::CostModel{});
  return j;
}

// ---------------------------------------------------------------- Trace

TEST(Trace, SortsByArrival) {
  std::vector<Job> jobs{make_job(30, 10, 1), make_job(10, 10, 1),
                        make_job(20, 10, 1)};
  Trace t(0, jobs);
  EXPECT_DOUBLE_EQ(t.jobs()[0].arrival_time, 10);
  EXPECT_DOUBLE_EQ(t.jobs()[1].arrival_time, 20);
  EXPECT_DOUBLE_EQ(t.jobs()[2].arrival_time, 30);
}

TEST(Trace, StartEndTimes) {
  Trace t(0, {make_job(5, 100, 1), make_job(10, 10, 1)});
  EXPECT_DOUBLE_EQ(t.start_time(), 5.0);
  EXPECT_DOUBLE_EQ(t.end_time(), 105.0);
}

TEST(Trace, EmptyTraceDefaults) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.end_time(), 0.0);
  EXPECT_EQ(t.peak_concurrent_bytes(), 0u);
}

TEST(Trace, PeakConcurrentBytes) {
  // Two 1 GiB jobs overlap during [10, 20): peak = 2 GiB.
  Trace t(0, {make_job(0, 20, common::kGiB), make_job(10, 20, common::kGiB)});
  EXPECT_EQ(t.peak_concurrent_bytes(), 2 * common::kGiB);
}

TEST(Trace, PeakWithDisjointJobs) {
  Trace t(0, {make_job(0, 5, common::kGiB), make_job(10, 5, common::kGiB)});
  EXPECT_EQ(t.peak_concurrent_bytes(), common::kGiB);
}

TEST(Trace, SliceFiltersByArrival) {
  Trace t(0, {make_job(5, 1, 1), make_job(15, 1, 1), make_job(25, 1, 1)});
  const Trace mid = t.slice(10, 20);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_DOUBLE_EQ(mid.jobs()[0].arrival_time, 15.0);
}

TEST(Trace, TotalCostAllHdd) {
  const auto a = make_job(0, 100, common::kGiB);
  const auto b = make_job(10, 100, common::kGiB);
  Trace t(0, {a, b});
  EXPECT_NEAR(t.total_cost_all_hdd(), a.cost_hdd + b.cost_hdd, 1e-12);
}

TEST(Job, ComputeCostsFillsDerived) {
  auto j = make_job(0, 600, 4 * common::kGiB);
  EXPECT_GT(j.tcio_hdd, 0.0);
  EXPECT_GT(j.io_density, 0.0);
  EXPECT_GT(j.cost_hdd, 0.0);
  EXPECT_GT(j.cost_ssd, 0.0);
}

// ------------------------------------------------------------ archetypes

TEST(Archetypes, CatalogHasAllIds) {
  EXPECT_EQ(archetype_catalog().size(),
            static_cast<std::size_t>(ArchetypeId::kCount));
}

TEST(Archetypes, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& a : archetype_catalog()) names.insert(a.name);
  EXPECT_EQ(names.size(), archetype_catalog().size());
}

TEST(Archetypes, NonFrameworkFamiliesFlagged) {
  EXPECT_FALSE(archetype(ArchetypeId::kCompressUpload).framework);
  EXPECT_FALSE(archetype(ArchetypeId::kMlTrainingCkpt).framework);
  EXPECT_TRUE(archetype(ArchetypeId::kStreamingShuffle).framework);
}

TEST(Archetypes, DenseFamiliesHaveSmallerReadBlocks) {
  EXPECT_LT(archetype(ArchetypeId::kDbQuery).read_block_mu,
            archetype(ArchetypeId::kMlCheckpoint).read_block_mu);
}

// ------------------------------------------------------------- generator

TEST(Generator, DeterministicForSeed) {
  const Trace a = small_trace();
  const Trace b = small_trace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs()[i].job_id, b.jobs()[i].job_id);
    EXPECT_DOUBLE_EQ(a.jobs()[i].arrival_time, b.jobs()[i].arrival_time);
    EXPECT_EQ(a.jobs()[i].peak_bytes, b.jobs()[i].peak_bytes);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig cfg;
  cfg.num_pipelines = 8;
  cfg.duration = 2.0 * common::kSecondsPerDay;
  cfg.seed = 1;
  const Trace a = generate_cluster_trace(cfg);
  cfg.seed = 2;
  const Trace b = generate_cluster_trace(cfg);
  bool any_diff = a.size() != b.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a.jobs()[i].peak_bytes != b.jobs()[i].peak_bytes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, JobsAreSortedAndInRange) {
  const Trace t = small_trace();
  double prev = -1.0;
  for (const auto& j : t.jobs()) {
    EXPECT_GE(j.arrival_time, prev);
    EXPECT_GE(j.arrival_time, 0.0);
    EXPECT_LT(j.arrival_time, 4.0 * common::kSecondsPerDay + 1800.0);
    prev = j.arrival_time;
  }
}

TEST(Generator, JobsHavePositiveMeasurements) {
  const Trace t = small_trace();
  for (const auto& j : t.jobs()) {
    EXPECT_GT(j.peak_bytes, 0u);
    EXPECT_GT(j.lifetime, 0.0);
    EXPECT_GT(j.io.bytes_written, 0u);
    EXPECT_GT(j.cost_hdd, 0.0);
    EXPECT_GT(j.cost_ssd, 0.0);
  }
}

TEST(Generator, MetadataStringsAreStructured) {
  const Trace t = small_trace();
  for (const auto& j : t.jobs()) {
    EXPECT_NE(j.pipeline_name.find("org_"), std::string::npos);
    EXPECT_NE(j.build_target_name.find("//"), std::string::npos);
    EXPECT_NE(j.execution_name.find(".launcher.Main"), std::string::npos);
    EXPECT_NE(j.step_name.find("shuffle"), std::string::npos);
    EXPECT_FALSE(j.user_name.empty());
    EXPECT_EQ(j.job_key, j.pipeline_name + "/" + j.step_name);
  }
}

TEST(Generator, RecurringJobsShareKeys) {
  const Trace t = small_trace();
  std::unordered_map<std::string, int> counts;
  for (const auto& j : t.jobs()) ++counts[j.job_key];
  int recurring = 0;
  for (const auto& [key, n] : counts) {
    if (n >= 3) ++recurring;
  }
  EXPECT_GT(recurring, 5);  // pipelines run many times over 4 days
}

TEST(Generator, HistoryAppearsAfterFirstExecution) {
  const Trace t = small_trace();
  std::unordered_map<std::string, int> seen;
  for (const auto& j : t.jobs()) {
    const int n = seen[j.job_key]++;
    if (n == 0) {
      EXPECT_FALSE(j.history.has_history());
    } else {
      EXPECT_TRUE(j.history.has_history());
      EXPECT_GT(j.history.average_size, 0.0);
    }
  }
}

TEST(Generator, HistoryApproximatesPipelineScale) {
  const Trace t = small_trace();
  for (const auto& j : t.jobs()) {
    if (!j.history.has_history()) continue;
    // History is a noisy average of the same pipeline's past sizes; it
    // should be within two orders of magnitude of the current job.
    const double ratio =
        j.history.average_size / static_cast<double>(j.peak_bytes);
    EXPECT_GT(ratio, 1e-3);
    EXPECT_LT(ratio, 1e3);
  }
}

TEST(Generator, MixedSavingSigns) {
  const Trace t = small_trace();
  int positive = 0, negative = 0;
  for (const auto& j : t.jobs()) {
    (j.tco_saving() > 0 ? positive : negative)++;
  }
  EXPECT_GT(positive, 0);
  EXPECT_GT(negative, 0);
}

TEST(Generator, RejectsBadConfig) {
  GeneratorConfig cfg;
  cfg.num_pipelines = 0;
  EXPECT_THROW(generate_cluster_trace(cfg), std::invalid_argument);
  cfg.num_pipelines = 4;
  cfg.archetype_weights = {1.0};  // wrong size
  EXPECT_THROW(generate_cluster_trace(cfg), std::invalid_argument);
}

TEST(Generator, CanonicalConfigsVaryByCluster) {
  const auto c0 = canonical_cluster_config(0);
  const auto c1 = canonical_cluster_config(1);
  EXPECT_NE(c0.archetype_weights, c1.archetype_weights);
  EXPECT_NE(c0.seed, c1.seed);
}

TEST(Generator, SpecialClusterRunsRareWorkloads) {
  const auto c3 = canonical_cluster_config(3);
  // Cluster 3 only runs video + ML checkpoint workloads (Figure 8's C3).
  double other = 0.0;
  for (std::size_t i = 0; i < c3.archetype_weights.size(); ++i) {
    if (i != static_cast<std::size_t>(ArchetypeId::kVideoProcessing) &&
        i != static_cast<std::size_t>(ArchetypeId::kMlCheckpoint)) {
      other += c3.archetype_weights[i];
    }
  }
  EXPECT_DOUBLE_EQ(other, 0.0);
}

TEST(Generator, TrainTestSplitCoversAll) {
  GeneratorConfig cfg;
  cfg.num_pipelines = 10;
  cfg.seed = 5;
  const Trace t = generate_cluster_trace(cfg);  // default 14 days
  const auto split = split_train_test(t);
  EXPECT_EQ(split.train.size() + split.test.size(), t.size());
  EXPECT_GT(split.train.size(), t.size() / 4);
  EXPECT_GT(split.test.size(), t.size() / 4);
  // All training arrivals precede all test arrivals.
  EXPECT_LE(split.train.end_time() > 0 ? split.train.jobs().back().arrival_time
                                       : 0.0,
            split.test.jobs().front().arrival_time);
}

TEST(Generator, FrameworkFlagFollowsArchetype) {
  GeneratorConfig cfg;
  cfg.num_pipelines = 10;
  cfg.seed = 6;
  cfg.duration = 2 * common::kSecondsPerDay;
  std::vector<double> w(static_cast<std::size_t>(ArchetypeId::kCount), 0.0);
  w[static_cast<std::size_t>(ArchetypeId::kCompressUpload)] = 1.0;
  cfg.archetype_weights = w;
  const Trace t = generate_cluster_trace(cfg);
  ASSERT_FALSE(t.empty());
  for (const auto& j : t.jobs()) EXPECT_FALSE(j.framework_workload);
}

// --------------------------------------------------------------- trace_io

TEST(TraceIo, CsvRoundTripPreservesJobs) {
  const Trace t = small_trace();
  const auto table = to_csv(t);
  const Trace back = from_csv(table);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Job& a = t.jobs()[i];
    const Job& b = back.jobs()[i];
    EXPECT_EQ(a.job_id, b.job_id);
    EXPECT_EQ(a.job_key, b.job_key);
    EXPECT_EQ(a.pipeline_name, b.pipeline_name);
    EXPECT_EQ(a.user_name, b.user_name);
    EXPECT_DOUBLE_EQ(a.arrival_time, b.arrival_time);
    EXPECT_DOUBLE_EQ(a.lifetime, b.lifetime);
    EXPECT_EQ(a.peak_bytes, b.peak_bytes);
    EXPECT_EQ(a.io.bytes_written, b.io.bytes_written);
    EXPECT_DOUBLE_EQ(a.cost_hdd, b.cost_hdd);
    EXPECT_DOUBLE_EQ(a.cost_ssd, b.cost_ssd);
    EXPECT_EQ(a.resources.num_buckets, b.resources.num_buckets);
    EXPECT_DOUBLE_EQ(a.history.average_tcio, b.history.average_tcio);
    EXPECT_EQ(a.framework_workload, b.framework_workload);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const Trace t = small_trace();
  const auto path =
      std::filesystem::temp_directory_path() / "byom_trace_test.csv";
  save_trace(path.string(), t);
  const Trace back = load_trace(path.string());
  EXPECT_EQ(back.size(), t.size());
  EXPECT_EQ(back.cluster_id(), t.cluster_id());
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingColumnThrows) {
  common::CsvTable table;
  table.header = {"job_id"};
  table.rows = {{"1"}};
  EXPECT_THROW(from_csv(table), std::out_of_range);
}

TEST(TraceIo, MalformedNumberThrows) {
  const Trace t = small_trace();
  auto table = to_csv(t);
  table.rows[0][table.column("lifetime")] = "not_a_number";
  EXPECT_THROW(from_csv(table), std::runtime_error);
}

}  // namespace
}  // namespace byom::trace
