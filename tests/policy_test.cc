#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "core/category_provider.h"
#include "policy/adaptive.h"
#include "policy/cachesack.h"
#include "policy/first_fit.h"
#include "policy/lifetime_ml.h"
#include "policy/oracle_replay.h"
#include "trace/generator.h"

namespace byom::policy {
namespace {

using common::kGiB;

trace::Job make_job(double arrival, double lifetime, std::uint64_t bytes,
                    const std::string& key = "pipe/step") {
  static std::uint64_t next_id = 1;
  trace::Job j;
  j.job_id = next_id++;
  j.job_key = key;
  j.pipeline_name = "pipe";
  j.step_name = "step";
  j.arrival_time = arrival;
  j.lifetime = lifetime;
  j.peak_bytes = bytes;
  j.io.bytes_written = bytes;
  j.io.bytes_read = 4 * bytes;
  j.io.avg_read_block = 8.0 * 1024.0;
  j.compute_costs(cost::CostModel{});
  return j;
}

StorageView view_with(std::uint64_t capacity, std::uint64_t used,
                      double now = 0.0) {
  StorageView v;
  v.now = now;
  v.ssd_capacity_bytes = capacity;
  v.ssd_used_bytes = used;
  return v;
}

// ---------------------------------------------------------------- FirstFit

TEST(FirstFit, AdmitsWhenItFits) {
  FirstFitPolicy p;
  EXPECT_EQ(p.decide(make_job(0, 60, kGiB), view_with(2 * kGiB, 0)),
            Device::kSsd);
}

TEST(FirstFit, RejectsWhenFull) {
  FirstFitPolicy p;
  EXPECT_EQ(p.decide(make_job(0, 60, kGiB), view_with(2 * kGiB, 2 * kGiB)),
            Device::kHdd);
}

TEST(FirstFit, ExactFitAdmits) {
  FirstFitPolicy p;
  EXPECT_EQ(p.decide(make_job(0, 60, kGiB), view_with(2 * kGiB, kGiB)),
            Device::kSsd);
}

TEST(FirstFit, IgnoresJobValue) {
  // FirstFit admits even negative-saving jobs - that is its flaw.
  FirstFitPolicy p;
  auto j = make_job(0, 6 * 3600.0, kGiB);
  j.io.bytes_read = 0;
  j.io.bytes_written = kGiB;
  j.compute_costs(cost::CostModel{});
  ASSERT_LT(j.tco_saving(), 0.0);
  EXPECT_EQ(p.decide(j, view_with(4 * kGiB, 0)), Device::kSsd);
}

TEST(FirstFit, Name) { EXPECT_EQ(FirstFitPolicy{}.name(), "FirstFit"); }

// --------------------------------------------------------------- CacheSack

TEST(CacheSack, AdmitsHighSavingCategory) {
  std::vector<trace::Job> history;
  for (int i = 0; i < 20; ++i) {
    history.push_back(make_job(i * 100.0, 600, kGiB, "good/step"));
  }
  CacheSackPolicy p(history, 10 * kGiB);
  EXPECT_TRUE(p.admits("good/step"));
  EXPECT_EQ(p.decide(make_job(0, 60, kGiB, "good/step"),
                     view_with(10 * kGiB, 0)),
            Device::kSsd);
}

TEST(CacheSack, RejectsNegativeSavingCategory) {
  std::vector<trace::Job> history;
  for (int i = 0; i < 20; ++i) {
    auto j = make_job(i * 100.0, 6 * 3600.0, 8 * kGiB, "cold/step");
    j.io.bytes_read = 0;
    j.compute_costs(cost::CostModel{});
    history.push_back(j);
  }
  ASSERT_LT(history[0].tco_saving(), 0.0);
  CacheSackPolicy p(history, 100 * kGiB);
  EXPECT_FALSE(p.admits("cold/step"));
}

TEST(CacheSack, UnknownCategoryGoesToHdd) {
  std::vector<trace::Job> history{make_job(0, 600, kGiB, "known/step")};
  CacheSackPolicy p(history, 10 * kGiB);
  EXPECT_EQ(p.decide(make_job(0, 60, kGiB, "never/seen"),
                     view_with(10 * kGiB, 0)),
            Device::kHdd);
}

TEST(CacheSack, CapacityLimitsAdmissionSet) {
  // Two categories, each averaging ~1 GiB occupancy; capacity for one.
  std::vector<trace::Job> history;
  for (int i = 0; i < 50; ++i) {
    history.push_back(make_job(i * 600.0, 600, kGiB, "cat_a/step"));
    auto b = make_job(i * 600.0, 600, kGiB, "cat_b/step");
    b.io.bytes_read = 2 * kGiB;  // lower savings than cat_a
    b.compute_costs(cost::CostModel{});
    history.push_back(b);
  }
  CacheSackPolicy p(history, static_cast<std::uint64_t>(1.2 * kGiB));
  EXPECT_TRUE(p.admits("cat_a/step"));
  EXPECT_FALSE(p.admits("cat_b/step"));
  EXPECT_EQ(p.admission_set_size(), 1u);
}

TEST(CacheSack, EmptyHistoryAdmitsNothing) {
  CacheSackPolicy p({}, 10 * kGiB);
  EXPECT_EQ(p.admission_set_size(), 0u);
}

// ------------------------------------------------------------- LifetimeML

class LifetimeMlTest : public ::testing::Test {
 protected:
  static std::vector<trace::Job> train_jobs() {
    std::vector<trace::Job> jobs;
    for (int i = 0; i < 300; ++i) {
      // Short-lived pipeline: 5 min. Long-lived pipeline: 10 h.
      auto s = make_job(i * 60.0, 300.0, kGiB, "short/step");
      s.resources.bucket_sizing_num_workers = 4;
      jobs.push_back(s);
      auto l = make_job(i * 60.0, 36000.0, kGiB, "long/step");
      l.pipeline_name = "longpipe";
      l.resources.bucket_sizing_num_workers = 400;
      jobs.push_back(l);
    }
    return jobs;
  }
};

TEST_F(LifetimeMlTest, AdmitsShortLivedJobs) {
  LifetimeMlConfig cfg;
  cfg.ttl_seconds = 3600.0;
  cfg.gbdt.num_rounds = 15;
  LifetimeMlPolicy p(train_jobs(), cfg);
  auto probe = make_job(0, 300.0, kGiB, "short/step");
  probe.resources.bucket_sizing_num_workers = 4;
  EXPECT_LT(p.predicted_lifetime_bound(probe), 3600.0);
  EXPECT_EQ(p.decide(probe, view_with(10 * kGiB, 0)), Device::kSsd);
}

TEST_F(LifetimeMlTest, RejectsLongLivedJobs) {
  LifetimeMlConfig cfg;
  cfg.ttl_seconds = 3600.0;
  cfg.gbdt.num_rounds = 15;
  LifetimeMlPolicy p(train_jobs(), cfg);
  auto probe = make_job(0, 36000.0, kGiB, "long/step");
  probe.pipeline_name = "longpipe";
  probe.resources.bucket_sizing_num_workers = 400;
  EXPECT_GT(p.predicted_lifetime_bound(probe), 3600.0);
  EXPECT_EQ(p.decide(probe, view_with(10 * kGiB, 0)), Device::kHdd);
}

TEST_F(LifetimeMlTest, EvictionTtlIsMuPlusSigma) {
  LifetimeMlConfig cfg;
  cfg.gbdt.num_rounds = 10;
  LifetimeMlPolicy p(train_jobs(), cfg);
  auto probe = make_job(0, 300.0, kGiB, "short/step");
  probe.resources.bucket_sizing_num_workers = 4;
  EXPECT_DOUBLE_EQ(p.eviction_ttl(probe), p.predicted_lifetime_bound(probe));
  EXPECT_GT(p.eviction_ttl(probe), 0.0);
}

// --------------------------------------------------------------- Adaptive

AdaptiveConfig fast_config(int n = 5) {
  AdaptiveConfig cfg;
  cfg.num_categories = n;
  cfg.lookback_window = 600.0;
  cfg.decision_interval = 100.0;
  cfg.spillover_lower = 0.01;
  cfg.spillover_upper = 0.15;
  return cfg;
}

// Provider that always answers `category` (the old CategoryFn-lambda tests).
core::CategoryProviderPtr const_category(int category) {
  return core::make_function_provider("const", [category](const trace::Job&) {
    return std::optional<int>(category);
  });
}

TEST(Adaptive, AdmitsByCategoryThreshold) {
  AdaptiveCategoryPolicy p(
      "t", const_category(3), fast_config());
  EXPECT_EQ(p.decide(make_job(0, 60, kGiB), view_with(kGiB, 0)),
            Device::kSsd);  // 3 >= ACT(1)
}

TEST(Adaptive, RejectsCategoryZero) {
  // Category 0 = negative savings; ACT >= 1 always, so never admitted.
  AdaptiveCategoryPolicy p(
      "t", const_category(0), fast_config());
  EXPECT_EQ(p.decide(make_job(0, 60, kGiB), view_with(kGiB, 0)),
            Device::kHdd);
}

TEST(Adaptive, ActRisesUnderSpillover) {
  auto cfg = fast_config();
  AdaptiveCategoryPolicy p("t", const_category(2), cfg);
  // Feed jobs that were scheduled to SSD but fully spilled.
  double t = 0.0;
  int act_before = p.current_act();
  for (int i = 0; i < 30; ++i) {
    t += 150.0;
    auto j = make_job(t, 300.0, kGiB);
    p.decide(j, view_with(kGiB, kGiB));
    PlacementOutcome out;
    out.scheduled = Device::kSsd;
    out.spill_fraction = 1.0;
    p.on_placed(j, out);
  }
  EXPECT_GT(p.current_act(), act_before);
  EXPECT_LE(p.current_act(), cfg.num_categories - 1);
}

TEST(Adaptive, ActFallsWhenIdle) {
  auto cfg = fast_config();
  cfg.initial_act = 4;
  AdaptiveCategoryPolicy p("t", const_category(2), cfg);
  double t = 0.0;
  for (int i = 0; i < 30; ++i) {
    t += 150.0;
    auto j = make_job(t, 300.0, kGiB);
    p.decide(j, view_with(100 * kGiB, 0));
    PlacementOutcome out;
    out.scheduled = Device::kSsd;
    out.spill_fraction = 0.0;  // no spillover: SSD has room
    p.on_placed(j, out);
  }
  EXPECT_EQ(p.current_act(), 1);
}

TEST(Adaptive, ActStableInsideToleranceRange) {
  auto cfg = fast_config();
  cfg.initial_act = 2;
  AdaptiveCategoryPolicy p("t", const_category(2), cfg);
  double t = 0.0;
  for (int i = 0; i < 30; ++i) {
    t += 150.0;
    auto j = make_job(t, 300.0, kGiB);
    p.decide(j, view_with(10 * kGiB, 0));
    PlacementOutcome out;
    out.scheduled = Device::kSsd;
    out.spill_fraction = 0.05;  // inside [0.01, 0.15]
    p.on_placed(j, out);
  }
  EXPECT_EQ(p.current_act(), 2);
}

TEST(Adaptive, DecisionIntervalThrottlesUpdates) {
  auto cfg = fast_config();
  cfg.decision_interval = 10000.0;
  AdaptiveCategoryPolicy p("t", const_category(2), cfg);
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    t += 10.0;  // all within one interval after the first decision
    p.decide(make_job(t, 60.0, kGiB), view_with(kGiB, 0));
  }
  EXPECT_LE(p.decision_log().size(), 2u);
}

TEST(Adaptive, WindowExpiryForgetsOldSpills) {
  auto cfg = fast_config();
  cfg.lookback_window = 300.0;
  AdaptiveCategoryPolicy p("t", const_category(2), cfg);
  // One fully-spilled job early on.
  auto early = make_job(0.0, 100.0, kGiB);
  p.decide(early, view_with(kGiB, kGiB));
  PlacementOutcome out;
  out.scheduled = Device::kSsd;
  out.spill_fraction = 1.0;
  p.on_placed(early, out);
  // Much later, a clean job: the old spill must have left the window.
  auto late = make_job(10000.0, 100.0, kGiB);
  p.decide(late, view_with(kGiB, 0));
  ASSERT_FALSE(p.decision_log().empty());
  EXPECT_DOUBLE_EQ(p.decision_log().back().spillover_pct, 0.0);
}

TEST(Adaptive, CategoryClamped) {
  AdaptiveCategoryPolicy p(
      "t", const_category(99), fast_config());
  p.decide(make_job(0, 60, kGiB), view_with(kGiB, 0));
  EXPECT_EQ(p.last_category(), 4);  // clamped to N-1
}

TEST(Adaptive, RejectsBadConfig) {
  AdaptiveConfig cfg;
  cfg.num_categories = 1;
  EXPECT_THROW(
      AdaptiveCategoryPolicy("t", const_category(0), cfg),
      std::invalid_argument);
  AdaptiveConfig inverted;
  inverted.spillover_lower = 0.5;
  inverted.spillover_upper = 0.1;
  EXPECT_THROW(AdaptiveCategoryPolicy(
                   "t", const_category(0), inverted),
               std::invalid_argument);
}

TEST(Adaptive, HashProviderDeterministicAndInRange) {
  const auto provider = core::make_hash_provider(15);
  auto j = make_job(0, 60, kGiB, "some/pipeline");
  const int c = provider->category(j).value();
  EXPECT_EQ(provider->category(j).value(), c);
  EXPECT_GE(c, 1);
  EXPECT_LE(c, 14);
}

TEST(Adaptive, HashProviderSpreadsAcrossBins) {
  const auto provider = core::make_hash_provider(15);
  std::vector<int> counts(15, 0);
  for (int i = 0; i < 2000; ++i) {
    auto j = make_job(0, 60, kGiB, "pipe" + std::to_string(i) + "/step");
    ++counts[static_cast<std::size_t>(provider->category(j).value())];
  }
  EXPECT_EQ(counts[0], 0);  // hash never assigns the negative class
  for (int c = 1; c < 15; ++c) EXPECT_GT(counts[static_cast<std::size_t>(c)], 50);
}

// ------------------------------------------------------------ OracleReplay

TEST(OracleReplay, ReplaysDecisions) {
  std::vector<trace::Job> jobs{make_job(0, 60, kGiB),
                               make_job(10, 60, kGiB)};
  oracle::Result solution;
  solution.on_ssd = {true, false};
  OracleReplayPolicy p("oracle", jobs, solution);
  EXPECT_EQ(p.decide(jobs[0], view_with(kGiB, 0)), Device::kSsd);
  EXPECT_EQ(p.decide(jobs[1], view_with(kGiB, 0)), Device::kHdd);
}

TEST(OracleReplay, UnknownJobDefaultsToHdd) {
  std::vector<trace::Job> jobs{make_job(0, 60, kGiB)};
  oracle::Result solution;
  solution.on_ssd = {true};
  OracleReplayPolicy p("oracle", jobs, solution);
  EXPECT_EQ(p.decide(make_job(99, 60, kGiB), view_with(kGiB, 0)),
            Device::kHdd);
}

TEST(OracleReplay, SizeMismatchThrows) {
  std::vector<trace::Job> jobs{make_job(0, 60, kGiB)};
  oracle::Result solution;
  solution.on_ssd = {true, false};
  EXPECT_THROW(OracleReplayPolicy("oracle", jobs, solution),
               std::invalid_argument);
}

TEST(StorageView, FreeBytesSaturates) {
  EXPECT_EQ(view_with(kGiB, 2 * kGiB).ssd_free_bytes(), 0u);
  EXPECT_EQ(view_with(2 * kGiB, kGiB).ssd_free_bytes(), kGiB);
}

}  // namespace
}  // namespace byom::policy
