#!/usr/bin/env python3
"""Golden-fixture tests for tools/lint_architecture.py.

Each rule has a mini-tree fixture under tests/lint_fixtures/arch/ with its
own layers.json: a violating tree per rule, a clean tree that must pass,
and a malformed contract that must be rejected with exit 2 (not reported
as a lint finding). The suite also asserts the real tree conforms to the
committed contract (tools/layers.json) — the same gate CI enforces.

Run directly (python3 tests/lint_architecture_test.py) or through ctest
(lint_architecture_test).
"""

import os
import subprocess
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(REPO_ROOT, "tools", "lint_architecture.py")
ARCH_FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures", "arch")

ALL_RULES = [
    "layer-order",
    "unknown-module",
    "include-cycle",
    "pragma-once",
    "banned-header",
    "cc-include",
]


def run_analyzer(*args):
    proc = subprocess.run(
        [sys.executable, LINTER, *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    return proc.returncode, proc.stdout, proc.stderr


def run_on_fixture(name, *extra):
    root = os.path.join(ARCH_FIXTURES, name)
    return run_analyzer("--root", root,
                        "--contract", os.path.join(root, "layers.json"),
                        *extra, os.path.join(root, "src"))


class ListRulesTest(unittest.TestCase):
    def test_lists_every_rule(self):
        code, out, _ = run_analyzer("--list-rules")
        self.assertEqual(code, 0)
        for rule in ALL_RULES:
            self.assertIn(f"{rule}:", out)


class FiringFixtureTest(unittest.TestCase):
    """One violating mini-tree per rule: the rule must fire on it."""

    def assert_fires(self, name, rule, needle):
        code, out, _ = run_on_fixture(name)
        self.assertEqual(code, 1, f"expected a violation in {name}:\n{out}")
        self.assertIn(f"[{rule}]", out)
        self.assertIn(needle, out)

    def test_layer_violation(self):
        self.assert_fires("layer_violation", "layer-order",
                          "must not include 'top/high.h'")

    def test_include_cycle(self):
        self.assert_fires("cycle", "include-cycle",
                          "src/base/a.h -> src/base/b.h -> src/base/a.h")

    def test_banned_header(self):
        self.assert_fires("banned_header", "banned-header",
                          "<regex> is banned here")

    def test_missing_pragma_once(self):
        self.assert_fires("missing_pragma", "pragma-once",
                          "missing #pragma once")

    def test_cc_include(self):
        self.assert_fires("cc_include", "cc-include",
                          "includes implementation file 'base/impl.cc'")


class CleanFixtureTest(unittest.TestCase):
    def test_clean_tree_passes(self):
        code, out, _ = run_on_fixture("clean")
        self.assertEqual(code, 0, f"clean fixture must pass:\n{out}")
        self.assertEqual(out, "")

    def test_graph_output(self):
        code, out, _ = run_on_fixture("clean", "--graph")
        self.assertEqual(code, 0)
        self.assertIn("module dependency graph", out)
        self.assertIn("top -> base", out)


class MalformedContractTest(unittest.TestCase):
    def test_duplicate_module_rejected(self):
        code, out, err = run_on_fixture("malformed")
        self.assertEqual(code, 2, "a malformed contract must exit 2")
        self.assertIn("appears in more than one layer", err)
        self.assertEqual(out, "")

    def test_missing_contract_rejected(self):
        root = os.path.join(ARCH_FIXTURES, "clean")
        code, _, err = run_analyzer(
            "--root", root,
            "--contract", os.path.join(root, "no_such_contract.json"),
            os.path.join(root, "src"))
        self.assertEqual(code, 2)
        self.assertIn("cannot read contract", err)


class SourceTreeTest(unittest.TestCase):
    """The real tree conforms to the committed contract — CI's gate."""

    def test_tree_conforms_to_contract(self):
        code, out, _ = run_analyzer("src", "bench", "tests", "examples")
        self.assertEqual(code, 0,
                         f"tree must satisfy tools/layers.json:\n{out}")

    def test_observed_graph_names_the_inversions(self):
        # The PR 9 dependency inversions hold: sim depends on no higher
        # module, and serving (which implements sim::HintService) may
        # depend on sim.
        code, out, _ = run_analyzer("--graph", "src")
        self.assertEqual(code, 0)
        for line in out.splitlines():
            if line.strip().startswith("sim ->"):
                for banned in ("serving", "harness", "bench"):
                    self.assertNotIn(banned, line)

    def test_contract_is_the_committed_one(self):
        # Guard against the default contract drifting away from the file
        # CI pins: the analyzer's default must be tools/layers.json.
        code, out, _ = run_analyzer(
            "--contract", os.path.join(REPO_ROOT, "tools", "layers.json"),
            "src")
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
