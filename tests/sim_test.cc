#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "policy/first_fit.h"
#include "policy/policy.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace byom::sim {
namespace {

using common::kGiB;

trace::Job make_job(double arrival, double lifetime, std::uint64_t bytes,
                    bool dense = true) {
  static std::uint64_t next_id = 1;
  trace::Job j;
  j.job_id = next_id++;
  j.job_key = "pipe/step";
  j.arrival_time = arrival;
  j.lifetime = lifetime;
  j.peak_bytes = bytes;
  j.io.bytes_written = bytes;
  j.io.bytes_read = dense ? 4 * bytes : bytes / 8;
  j.io.avg_read_block = dense ? 8.0 * 1024.0 : 1024.0 * 1024.0;
  j.compute_costs(cost::CostModel{});
  return j;
}

// A policy that always says SSD / HDD.
class AlwaysPolicy final : public policy::PlacementPolicy {
 public:
  explicit AlwaysPolicy(policy::Device device, double ttl = 0.0)
      : device_(device), ttl_(ttl) {}
  std::string name() const override { return "Always"; }
  policy::Device decide(const trace::Job&,
                        const policy::StorageView&) override {
    return device_;
  }
  double eviction_ttl(const trace::Job&) const override { return ttl_; }

 private:
  policy::Device device_;
  double ttl_;
};

// ---------------------------------------------------------------- simulate

TEST(Simulator, AllHddHasZeroSavings) {
  trace::Trace t(0, {make_job(0, 600, kGiB), make_job(100, 600, kGiB)});
  AlwaysPolicy p(policy::Device::kHdd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 100 * kGiB;
  const auto r = simulate(t, p, cfg);
  EXPECT_DOUBLE_EQ(r.tco_savings_pct(), 0.0);
  EXPECT_DOUBLE_EQ(r.tcio_savings_pct(), 0.0);
  EXPECT_EQ(r.jobs_scheduled_ssd, 0u);
}

TEST(Simulator, DenseJobsOnSsdSaveMoney) {
  trace::Trace t(0, {make_job(0, 600, kGiB), make_job(100, 600, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 100 * kGiB;
  const auto r = simulate(t, p, cfg);
  EXPECT_GT(r.tco_savings_pct(), 0.0);
  EXPECT_DOUBLE_EQ(r.tcio_savings_pct(), 100.0);
  EXPECT_EQ(r.jobs_scheduled_ssd, 2u);
}

TEST(Simulator, CapacityForcesSpill) {
  // Two overlapping 1 GiB jobs with capacity for 1.5 GiB: second spills 50%.
  trace::Trace t(0, {make_job(0, 600, kGiB), make_job(10, 600, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = kGiB + kGiB / 2;
  cfg.record_outcomes = true;
  const auto r = simulate(t, p, cfg);
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_DOUBLE_EQ(r.outcomes[0].spill_fraction, 0.0);
  EXPECT_NEAR(r.outcomes[1].spill_fraction, 0.5, 1e-9);
  EXPECT_LT(r.tcio_savings_pct(), 100.0);
}

TEST(Simulator, CapacityReusedAfterEnd) {
  // Sequential jobs: no spill despite 1 GiB capacity.
  trace::Trace t(0, {make_job(0, 100, kGiB), make_job(200, 100, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = kGiB;
  cfg.record_outcomes = true;
  const auto r = simulate(t, p, cfg);
  EXPECT_DOUBLE_EQ(r.outcomes[1].spill_fraction, 0.0);
}

TEST(Simulator, EvictionTtlShortensResidency) {
  trace::Trace t(0, {make_job(0, 1000, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd, /*ttl=*/250.0);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 10 * kGiB;
  cfg.record_outcomes = true;
  const auto r = simulate(t, p, cfg);
  EXPECT_NEAR(r.outcomes[0].ssd_time_share, 0.25, 1e-9);
  // TCIO savings only accrue while resident.
  EXPECT_NEAR(r.tcio_savings_pct(), 25.0, 0.1);
}

TEST(Simulator, EvictionFreesCapacityEarly) {
  // First job evicted at t=100; second job arriving at t=150 fits fully.
  trace::Trace t(0, {make_job(0, 1000, kGiB), make_job(150, 100, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd, /*ttl=*/100.0);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = kGiB;
  cfg.record_outcomes = true;
  const auto r = simulate(t, p, cfg);
  EXPECT_DOUBLE_EQ(r.outcomes[1].spill_fraction, 0.0);
}

TEST(Simulator, PeakUsageTracked) {
  trace::Trace t(0, {make_job(0, 600, kGiB), make_job(10, 600, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 10 * kGiB;
  const auto r = simulate(t, p, cfg);
  EXPECT_EQ(r.peak_ssd_used_bytes, 2 * kGiB);
}

TEST(Simulator, TcoMatchesManualAccounting) {
  const auto job = make_job(0, 600, kGiB);
  trace::Trace t(0, {job});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 10 * kGiB;
  const auto r = simulate(t, p, cfg);
  EXPECT_NEAR(r.tco_actual, job.cost_ssd, job.cost_ssd * 1e-9);
  EXPECT_NEAR(r.tco_all_hdd, job.cost_hdd, 1e-12);
}

TEST(Simulator, ZeroCapacityMeansFullSpill) {
  trace::Trace t(0, {make_job(0, 600, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 0;
  const auto r = simulate(t, p, cfg);
  EXPECT_NEAR(r.tco_savings_pct(), 0.0, 1e-9);
  EXPECT_NEAR(r.tcio_savings_pct(), 0.0, 1e-9);
}

// -------------------------------------------------------------- experiment

TEST(Experiment, MethodNamesAreStable) {
  EXPECT_STREQ(method_name(MethodId::kFirstFit), "FirstFit");
  EXPECT_STREQ(method_name(MethodId::kAdaptiveRanking), "AdaptiveRanking");
  EXPECT_STREQ(method_name(MethodId::kOracleTco), "OracleTCO");
}

TEST(Experiment, QuotaCapacityScalesWithPeak) {
  trace::Trace t(0, {make_job(0, 600, kGiB), make_job(10, 600, kGiB)});
  EXPECT_EQ(quota_capacity(t, 0.5), kGiB);
  EXPECT_EQ(quota_capacity(t, 1.0), 2 * kGiB);
}

class ExperimentFactoryTest : public ::testing::Test {
 protected:
  static trace::TrainTestSplit& split() {
    static trace::TrainTestSplit s = [] {
      trace::GeneratorConfig cfg = trace::canonical_cluster_config(0, 777);
      cfg.num_pipelines = 14;
      cfg.duration = 6.0 * 86400.0;
      return trace::split_train_test(trace::generate_cluster_trace(cfg));
    }();
    return s;
  }
  static MethodFactory& factory() {
    static MethodFactory f = [] {
      core::CategoryModelConfig mc;
      mc.num_categories = 8;
      mc.gbdt.num_rounds = 10;
      return MethodFactory(split().train, cost::Rates{}, mc);
    }();
    return f;
  }
};

TEST_F(ExperimentFactoryTest, BuildsEveryMethod) {
  const auto cap = quota_capacity(split().test, 0.05);
  for (MethodId id :
       {MethodId::kFirstFit, MethodId::kHeuristic, MethodId::kMlBaseline,
        MethodId::kAdaptiveHash, MethodId::kAdaptiveRanking,
        MethodId::kOracleTco, MethodId::kOracleTcio,
        MethodId::kTrueCategory}) {
    const auto policy = factory().make(id, split().test, cap);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), method_name(id));
  }
}

TEST_F(ExperimentFactoryTest, RunMethodProducesSavings) {
  const auto cap = quota_capacity(split().test, 0.05);
  const auto r = run_method(factory(), MethodId::kOracleTco, split().test,
                            cap);
  EXPECT_GT(r.tco_savings_pct(), 0.0);
  EXPECT_EQ(r.jobs_total, split().test.size());
}

TEST_F(ExperimentFactoryTest, OracleBeatsFirstFitAtTightQuota) {
  const auto cap = quota_capacity(split().test, 0.01);
  const auto oracle =
      run_method(factory(), MethodId::kOracleTco, split().test, cap);
  const auto ff =
      run_method(factory(), MethodId::kFirstFit, split().test, cap);
  EXPECT_GT(oracle.tco_savings_pct(), ff.tco_savings_pct());
}

TEST_F(ExperimentFactoryTest, ExternalModelInjection) {
  MethodFactory other(split().train);
  core::CategoryModelConfig mc;
  mc.num_categories = 8;
  mc.gbdt.num_rounds = 5;
  other.set_category_model(
      core::CategoryModel::train(split().train.jobs(), mc));
  EXPECT_EQ(other.category_model().num_categories(), 8);
}

// ----------------------------------------------------------------- metrics

TEST(SweepTable, CsvFormat) {
  SweepTable table("quota", {"A", "B"});
  table.add_row(0.1, {1.0, 2.0});
  table.add_row(0.2, {3.0, 4.0});
  const auto csv = table.to_csv(1);
  EXPECT_NE(csv.find("quota,A,B"), std::string::npos);
  EXPECT_NE(csv.find("0.1,1.0,2.0"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.value(1, 0), 3.0);
}

TEST(SweepTable, RowWidthValidated) {
  SweepTable table("x", {"A"});
  EXPECT_THROW(table.add_row(0.0, {1.0, 2.0}), std::invalid_argument);
}

TEST(ImprovementFactor, Formats) {
  EXPECT_EQ(improvement_factor(3.47, 1.0), "3.47x");
  EXPECT_EQ(improvement_factor(1.0, 0.0), "infx");
}

}  // namespace
}  // namespace byom::sim
