#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/units.h"
#include "policy/first_fit.h"
#include "policy/policy.h"
#include "harness/experiment.h"
#include "harness/experiment_runner.h"
#include "sim/metrics.h"
#include "sim/sim_clock.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace byom::sim {
namespace {

using common::kGiB;

trace::Job make_job(double arrival, double lifetime, std::uint64_t bytes,
                    bool dense = true) {
  static std::uint64_t next_id = 1;
  trace::Job j;
  j.job_id = next_id++;
  j.job_key = "pipe/step";
  j.arrival_time = arrival;
  j.lifetime = lifetime;
  j.peak_bytes = bytes;
  j.io.bytes_written = bytes;
  j.io.bytes_read = dense ? 4 * bytes : bytes / 8;
  j.io.avg_read_block = dense ? 8.0 * 1024.0 : 1024.0 * 1024.0;
  j.compute_costs(cost::CostModel{});
  return j;
}

// A policy that always says SSD / HDD.
class AlwaysPolicy final : public policy::PlacementPolicy {
 public:
  explicit AlwaysPolicy(policy::Device device, double ttl = 0.0)
      : device_(device), ttl_(ttl) {}
  std::string name() const override { return "Always"; }
  policy::Device decide(const trace::Job&,
                        const policy::StorageView&) override {
    return device_;
  }
  double eviction_ttl(const trace::Job&) const override { return ttl_; }

 private:
  policy::Device device_;
  double ttl_;
};

// ---------------------------------------------------------------- simulate

TEST(Simulator, AllHddHasZeroSavings) {
  trace::Trace t(0, {make_job(0, 600, kGiB), make_job(100, 600, kGiB)});
  AlwaysPolicy p(policy::Device::kHdd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 100 * kGiB;
  const auto r = simulate(t, p, cfg);
  EXPECT_DOUBLE_EQ(r.tco_savings_pct(), 0.0);
  EXPECT_DOUBLE_EQ(r.tcio_savings_pct(), 0.0);
  EXPECT_EQ(r.jobs_scheduled_ssd, 0u);
}

TEST(Simulator, DenseJobsOnSsdSaveMoney) {
  trace::Trace t(0, {make_job(0, 600, kGiB), make_job(100, 600, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 100 * kGiB;
  const auto r = simulate(t, p, cfg);
  EXPECT_GT(r.tco_savings_pct(), 0.0);
  EXPECT_DOUBLE_EQ(r.tcio_savings_pct(), 100.0);
  EXPECT_EQ(r.jobs_scheduled_ssd, 2u);
}

TEST(Simulator, CapacityForcesSpill) {
  // Two overlapping 1 GiB jobs with capacity for 1.5 GiB: second spills 50%.
  trace::Trace t(0, {make_job(0, 600, kGiB), make_job(10, 600, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = kGiB + kGiB / 2;
  cfg.record_outcomes = true;
  const auto r = simulate(t, p, cfg);
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_DOUBLE_EQ(r.outcomes[0].spill_fraction, 0.0);
  EXPECT_NEAR(r.outcomes[1].spill_fraction, 0.5, 1e-9);
  EXPECT_LT(r.tcio_savings_pct(), 100.0);
}

TEST(Simulator, CapacityReusedAfterEnd) {
  // Sequential jobs: no spill despite 1 GiB capacity.
  trace::Trace t(0, {make_job(0, 100, kGiB), make_job(200, 100, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = kGiB;
  cfg.record_outcomes = true;
  const auto r = simulate(t, p, cfg);
  EXPECT_DOUBLE_EQ(r.outcomes[1].spill_fraction, 0.0);
}

TEST(Simulator, EvictionTtlShortensResidency) {
  trace::Trace t(0, {make_job(0, 1000, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd, /*ttl=*/250.0);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 10 * kGiB;
  cfg.record_outcomes = true;
  const auto r = simulate(t, p, cfg);
  EXPECT_NEAR(r.outcomes[0].ssd_time_share, 0.25, 1e-9);
  // TCIO savings only accrue while resident.
  EXPECT_NEAR(r.tcio_savings_pct(), 25.0, 0.1);
}

TEST(Simulator, EvictionFreesCapacityEarly) {
  // First job evicted at t=100; second job arriving at t=150 fits fully.
  trace::Trace t(0, {make_job(0, 1000, kGiB), make_job(150, 100, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd, /*ttl=*/100.0);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = kGiB;
  cfg.record_outcomes = true;
  const auto r = simulate(t, p, cfg);
  EXPECT_DOUBLE_EQ(r.outcomes[1].spill_fraction, 0.0);
}

TEST(Simulator, PeakUsageTracked) {
  trace::Trace t(0, {make_job(0, 600, kGiB), make_job(10, 600, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 10 * kGiB;
  const auto r = simulate(t, p, cfg);
  EXPECT_EQ(r.peak_ssd_used_bytes, 2 * kGiB);
}

TEST(Simulator, TcoMatchesManualAccounting) {
  const auto job = make_job(0, 600, kGiB);
  trace::Trace t(0, {job});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 10 * kGiB;
  const auto r = simulate(t, p, cfg);
  EXPECT_NEAR(r.tco_actual, job.cost_ssd, job.cost_ssd * 1e-9);
  EXPECT_NEAR(r.tco_all_hdd, job.cost_hdd, 1e-12);
}

TEST(Simulator, ZeroCapacityMeansFullSpill) {
  trace::Trace t(0, {make_job(0, 600, kGiB)});
  AlwaysPolicy p(policy::Device::kSsd);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = 0;
  const auto r = simulate(t, p, cfg);
  EXPECT_NEAR(r.tco_savings_pct(), 0.0, 1e-9);
  EXPECT_NEAR(r.tcio_savings_pct(), 0.0, 1e-9);
}

// ---------------------------------------------------------------- SimClock

TEST(SimClock, RunsEventsInTimeOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.schedule(3.0, [&] { order.push_back(3); });
  clock.schedule(1.0, [&] { order.push_back(1); });
  clock.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(clock.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(SimClock, PriorityBreaksTiesAtEqualTimes) {
  SimClock clock;
  std::vector<int> order;
  clock.schedule(5.0, SimClock::kArrivalPriority, [&] { order.push_back(3); });
  clock.schedule(5.0, SimClock::kHintReadyPriority,
                 [&] { order.push_back(2); });
  clock.schedule(5.0, SimClock::kReleasePriority, [&] { order.push_back(0); });
  clock.schedule(5.0, SimClock::kRetrainPriority, [&] { order.push_back(1); });
  clock.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimClock, ScheduleOrderBreaksRemainingTies) {
  SimClock clock;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    clock.schedule(1.0, SimClock::kArrivalPriority,
                   [&order, i] { order.push_back(i); });
  }
  clock.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimClock, PastEventsClampToNow) {
  SimClock clock;
  clock.advance_to(10.0);
  double fired_at = -1.0;
  clock.schedule(2.0, [&] { fired_at = clock.now(); });
  clock.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);  // time never moves backwards
}

TEST(SimClock, EventsMayScheduleFurtherEvents) {
  SimClock clock;
  std::vector<double> times;
  clock.schedule(1.0, [&] {
    times.push_back(clock.now());
    clock.schedule(2.0, [&] { times.push_back(clock.now()); });
  });
  EXPECT_EQ(clock.run_all(), 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(clock.processed(), 2u);
}

TEST(SimClock, RunUntilIsInclusiveAndAdvances) {
  SimClock clock;
  int fired = 0;
  clock.schedule(1.0, [&] { ++fired; });
  clock.schedule(2.0, [&] { ++fired; });
  clock.schedule(2.5, [&] { ++fired; });
  EXPECT_EQ(clock.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  EXPECT_EQ(clock.pending(), 1u);
}

TEST(SimClock, RejectsNullEvent) {
  SimClock clock;
  EXPECT_THROW(clock.schedule(0.0, SimClock::EventFn{}),
               std::invalid_argument);
}

// ------------------------------------------------- event engine regression

// The event-driven engine must replay byte-for-byte like the synchronous
// reference loop when nothing races (no latency, no staleness).
void expect_bit_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.tco_actual, b.tco_actual);
  EXPECT_EQ(a.tco_all_hdd, b.tco_all_hdd);
  EXPECT_EQ(a.tcio_actual_seconds, b.tcio_actual_seconds);
  EXPECT_EQ(a.tcio_all_hdd_seconds, b.tcio_all_hdd_seconds);
  EXPECT_EQ(a.jobs_total, b.jobs_total);
  EXPECT_EQ(a.jobs_scheduled_ssd, b.jobs_scheduled_ssd);
  EXPECT_EQ(a.peak_ssd_used_bytes, b.peak_ssd_used_bytes);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].job_id, b.outcomes[i].job_id);
    EXPECT_EQ(a.outcomes[i].scheduled, b.outcomes[i].scheduled);
    EXPECT_EQ(a.outcomes[i].spill_fraction, b.outcomes[i].spill_fraction);
    EXPECT_EQ(a.outcomes[i].ssd_time_share, b.outcomes[i].ssd_time_share);
  }
}

TEST(EventEngine, MatchesSynchronousReferenceWithEviction) {
  trace::Trace t(0, {make_job(0, 1000, kGiB), make_job(150, 100, kGiB),
                     make_job(500, 200, kGiB / 2), make_job(500, 50, kGiB)});
  SimConfig cfg;
  cfg.ssd_capacity_bytes = kGiB + kGiB / 2;
  cfg.record_outcomes = true;
  AlwaysPolicy p1(policy::Device::kSsd, /*ttl=*/100.0);
  AlwaysPolicy p2(policy::Device::kSsd, /*ttl=*/100.0);
  expect_bit_identical(simulate(t, p1, cfg), simulate_synchronous(t, p2, cfg));
}

// -------------------------------------------------------------- experiment

TEST(Experiment, MethodNamesAreStable) {
  EXPECT_STREQ(method_name(MethodId::kFirstFit), "FirstFit");
  EXPECT_STREQ(method_name(MethodId::kAdaptiveRanking), "AdaptiveRanking");
  EXPECT_STREQ(method_name(MethodId::kOracleTco), "OracleTCO");
}

TEST(Experiment, QuotaCapacityScalesWithPeak) {
  trace::Trace t(0, {make_job(0, 600, kGiB), make_job(10, 600, kGiB)});
  EXPECT_EQ(quota_capacity(t, 0.5), kGiB);
  EXPECT_EQ(quota_capacity(t, 1.0), 2 * kGiB);
}

class ExperimentFactoryTest : public ::testing::Test {
 protected:
  static trace::TrainTestSplit& split() {
    static trace::TrainTestSplit s = [] {
      trace::GeneratorConfig cfg = trace::canonical_cluster_config(0, 777);
      cfg.num_pipelines = 14;
      cfg.duration = 6.0 * 86400.0;
      return trace::split_train_test(trace::generate_cluster_trace(cfg));
    }();
    return s;
  }
  static MethodFactory& factory() {
    static MethodFactory f = [] {
      core::CategoryModelConfig mc;
      mc.num_categories = 8;
      mc.gbdt.num_rounds = 10;
      return MethodFactory(split().train, cost::Rates{}, mc);
    }();
    return f;
  }
};

TEST_F(ExperimentFactoryTest, BuildsEveryMethod) {
  const auto cap = quota_capacity(split().test, 0.05);
  for (MethodId id :
       {MethodId::kFirstFit, MethodId::kHeuristic, MethodId::kMlBaseline,
        MethodId::kAdaptiveHash, MethodId::kAdaptiveRanking,
        MethodId::kOracleTco, MethodId::kOracleTcio, MethodId::kTrueCategory,
        MethodId::kAdaptiveServed, MethodId::kAdaptiveServedLatency}) {
    const auto policy = factory().make(id, split().test, cap);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), method_name(id));
  }
}

// With zero hint latency and no staleness schedule the event-driven engine
// must be bit-identical to the pre-refactor synchronous simulator for every
// method (the acceptance bar for the refactor).
TEST_F(ExperimentFactoryTest, EventEngineBitIdenticalToSynchronousPath) {
  const auto cap = quota_capacity(split().test, 0.02);
  SimConfig cfg;
  cfg.ssd_capacity_bytes = cap;
  cfg.record_outcomes = true;
  for (MethodId id :
       {MethodId::kFirstFit, MethodId::kHeuristic, MethodId::kMlBaseline,
        MethodId::kAdaptiveHash, MethodId::kAdaptiveRanking,
        MethodId::kOracleTco, MethodId::kOracleTcio, MethodId::kTrueCategory,
        MethodId::kAdaptiveServed}) {
    SCOPED_TRACE(method_name(id));
    const auto event_policy = factory().make(id, split().test, cap);
    const auto sync_policy = factory().make(id, split().test, cap);
    expect_bit_identical(simulate(split().test, *event_policy, cfg),
                         simulate_synchronous(split().test, *sync_policy,
                                              cfg));
  }
}

// ------------------------------------------- latency-aware serving method

TEST_F(ExperimentFactoryTest, ServedLatencyZeroLatencyMatchesServed) {
  const auto cap = quota_capacity(split().test, 0.05);
  MakeOptions options;
  options.hint_latency = 0.0;
  const auto latency = run_method(factory(), MethodId::kAdaptiveServedLatency,
                                  split().test, cap, options);
  const auto served =
      run_method(factory(), MethodId::kAdaptiveServed, split().test, cap);
  EXPECT_EQ(latency.tco_actual, served.tco_actual);
  EXPECT_EQ(latency.tcio_actual_seconds, served.tcio_actual_seconds);
  EXPECT_EQ(latency.jobs_scheduled_ssd, served.jobs_scheduled_ssd);
  // Every hint was requested at arrival, served instantly, consumed on time.
  EXPECT_EQ(latency.hints_on_time, split().test.size());
  EXPECT_EQ(latency.hints_late, 0u);
  EXPECT_EQ(latency.hints_dropped, 0u);
}

TEST_F(ExperimentFactoryTest, LateHintsDegradeToHashCategory) {
  // Mean latency astronomically beyond the deadline: every hint arrives
  // after its decision, so Algorithm 1 runs entirely on the hash fallback —
  // exactly the AdaptiveHash ablation.
  const auto cap = quota_capacity(split().test, 0.05);
  MakeOptions options;
  options.hint_latency = 1e12;
  options.hint_deadline = 1.0;
  const auto late = run_method(factory(), MethodId::kAdaptiveServedLatency,
                               split().test, cap, options);
  const auto hash =
      run_method(factory(), MethodId::kAdaptiveHash, split().test, cap);
  EXPECT_EQ(late.tco_actual, hash.tco_actual);
  EXPECT_EQ(late.tcio_actual_seconds, hash.tcio_actual_seconds);
  EXPECT_EQ(late.jobs_scheduled_ssd, hash.jobs_scheduled_ssd);
  EXPECT_EQ(late.hints_on_time, 0u);
  EXPECT_EQ(late.hints_late, split().test.size());
}

TEST_F(ExperimentFactoryTest, ModerateLatencySplitsOnTimeAndLate) {
  const auto cap = quota_capacity(split().test, 0.05);
  MakeOptions options;
  options.hint_latency = 1.0;  // mean == deadline: ~63% on time
  options.hint_deadline = 1.0;
  const auto r = run_method(factory(), MethodId::kAdaptiveServedLatency,
                            split().test, cap, options);
  EXPECT_GT(r.hints_on_time, 0u);
  EXPECT_GT(r.hints_late, 0u);
  EXPECT_EQ(r.hints_on_time + r.hints_late + r.hints_dropped,
            split().test.size());
  // Savings sit between the all-late (hash) floor and the all-on-time
  // (served) regimes, inclusive.
  const auto served =
      run_method(factory(), MethodId::kAdaptiveServed, split().test, cap);
  const auto hash =
      run_method(factory(), MethodId::kAdaptiveHash, split().test, cap);
  const double lo =
      std::min(hash.tco_savings_pct(), served.tco_savings_pct()) - 0.5;
  const double hi =
      std::max(hash.tco_savings_pct(), served.tco_savings_pct()) + 0.5;
  EXPECT_GE(r.tco_savings_pct(), lo);
  EXPECT_LE(r.tco_savings_pct(), hi);
}

TEST_F(ExperimentFactoryTest, ServedLatencyRunsAreBitIdentical) {
  const auto cap = quota_capacity(split().test, 0.05);
  MakeOptions options;
  options.hint_latency = 2.0;
  options.retrain_period = 86400.0;
  options.noise_seed = 1234;
  const auto a = run_method(factory(), MethodId::kAdaptiveServedLatency,
                            split().test, cap, options, true);
  const auto b = run_method(factory(), MethodId::kAdaptiveServedLatency,
                            split().test, cap, options, true);
  expect_bit_identical(a, b);
  EXPECT_EQ(a.hints_on_time, b.hints_on_time);
  EXPECT_EQ(a.hints_late, b.hints_late);
  EXPECT_EQ(a.retrain_events, b.retrain_events);
  EXPECT_GT(a.retrain_events, 0u);
}

TEST_F(ExperimentFactoryTest, ParallelLatencyCellsMatchSerialBitExactly) {
  // Latency + staleness cells through the pool: thread count must not leak
  // into results (per-cell seeds and per-cell clocks keep cells hermetic).
  ExperimentRunner parallel(4);
  ExperimentRunner serial(1);
  const std::size_t pc = parallel.add_cluster(&factory(), &split().test);
  const std::size_t sc = serial.add_cluster(&factory(), &split().test);
  ASSERT_EQ(pc, sc);
  auto cells = parallel.make_grid(
      pc, {MethodId::kAdaptiveServedLatency, MethodId::kAdaptiveRanking},
      {0.01, 0.05});
  for (auto& cell : cells) {
    cell.hint_latency = 0.5;
    cell.retrain_period = 43200.0;
  }
  const auto a = parallel.run(cells);
  const auto b = serial.run_serial(cells);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_bit_identical(a[i].result, b[i].result);
    EXPECT_EQ(a[i].result.hints_on_time, b[i].result.hints_on_time);
    EXPECT_EQ(a[i].result.hints_late, b[i].result.hints_late);
  }
}

TEST_F(ExperimentFactoryTest, StalenessSweepDecaysMonotonically) {
  // The section-6 cadence study: the longer the model serves between
  // retrains, the more hints decay to the hash floor and the lower the
  // savings — monotonically, down to the never-retrained endpoint.
  const auto cap = quota_capacity(split().test, 0.05);
  const double kNever = 1e18;  // longer than any trace: zero retrain events
  const std::vector<double> periods = {3600.0, 6.0 * 3600.0, 86400.0,
                                       3.0 * 86400.0, kNever};
  std::vector<double> savings;
  for (const double period : periods) {
    MakeOptions options;
    options.hint_latency = 0.0;
    options.retrain_period = period;
    options.staleness_half_life = 6.0 * 3600.0;
    const auto r = run_method(factory(), MethodId::kAdaptiveServedLatency,
                              split().test, cap, options);
    savings.push_back(r.tco_savings_pct());
  }
  const auto fresh =
      run_method(factory(), MethodId::kAdaptiveServed, split().test, cap);
  const auto hash =
      run_method(factory(), MethodId::kAdaptiveHash, split().test, cap);
  // Monotone decay across the sweep (small tolerance for ACT-feedback
  // wiggle), strictly below fresh by the end.
  for (std::size_t i = 1; i < savings.size(); ++i) {
    EXPECT_LE(savings[i], savings[i - 1] + 0.25)
        << "period " << periods[i] << " vs " << periods[i - 1];
  }
  EXPECT_LT(savings.back(), fresh.tco_savings_pct());
  // Even fully stale, the hash floor holds (graceful degradation).
  EXPECT_GE(savings.back(), hash.tco_savings_pct() - 1.0);
}

TEST_F(ExperimentFactoryTest, RunMethodProducesSavings) {
  const auto cap = quota_capacity(split().test, 0.05);
  const auto r = run_method(factory(), MethodId::kOracleTco, split().test,
                            cap);
  EXPECT_GT(r.tco_savings_pct(), 0.0);
  EXPECT_EQ(r.jobs_total, split().test.size());
}

TEST_F(ExperimentFactoryTest, OracleBeatsFirstFitAtTightQuota) {
  const auto cap = quota_capacity(split().test, 0.01);
  const auto oracle =
      run_method(factory(), MethodId::kOracleTco, split().test, cap);
  const auto ff =
      run_method(factory(), MethodId::kFirstFit, split().test, cap);
  EXPECT_GT(oracle.tco_savings_pct(), ff.tco_savings_pct());
}

TEST_F(ExperimentFactoryTest, ExternalModelInjection) {
  MethodFactory other(split().train);
  core::CategoryModelConfig mc;
  mc.num_categories = 8;
  mc.gbdt.num_rounds = 5;
  other.set_category_model(
      core::CategoryModel::train(split().train.jobs(), mc));
  EXPECT_EQ(other.category_model().num_categories(), 8);
}

// ----------------------------------------------------------------- metrics

TEST(SweepTable, CsvFormat) {
  SweepTable table("quota", {"A", "B"});
  table.add_row(0.1, {1.0, 2.0});
  table.add_row(0.2, {3.0, 4.0});
  const auto csv = table.to_csv(1);
  EXPECT_NE(csv.find("quota,A,B"), std::string::npos);
  EXPECT_NE(csv.find("0.1,1.0,2.0"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.value(1, 0), 3.0);
}

TEST(SweepTable, RowWidthValidated) {
  SweepTable table("x", {"A"});
  EXPECT_THROW(table.add_row(0.0, {1.0, 2.0}), std::invalid_argument);
}

TEST(ImprovementFactor, Formats) {
  EXPECT_EQ(improvement_factor(3.47, 1.0), "3.47x");
  EXPECT_EQ(improvement_factor(1.0, 0.0), "infx");
}

}  // namespace
}  // namespace byom::sim
