#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/importance.h"
#include "ml/metrics.h"
#include "ml/tree.h"

namespace byom::ml {
namespace {

using common::Rng;

Dataset xor_like_dataset(std::vector<int>& labels, int n, std::uint64_t seed) {
  // Nonlinear 2-class problem: label = (x0 > 0) XOR (x1 > 0), plus a noise
  // feature trees should ignore.
  Dataset data({"x0", "x1", "noise"});
  Rng rng(seed);
  labels.clear();
  for (int i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.uniform(-1, 1));
    const float x1 = static_cast<float>(rng.uniform(-1, 1));
    const float nz = static_cast<float>(rng.uniform(-1, 1));
    data.add_row({x0, x1, nz});
    labels.push_back(((x0 > 0) ^ (x1 > 0)) ? 1 : 0);
  }
  return data;
}

Dataset three_class_dataset(std::vector<int>& labels, int n,
                            std::uint64_t seed) {
  // Classes are bands of x0 + 0.5 * x1; solvable by axis splits.
  Dataset data({"x0", "x1"});
  Rng rng(seed);
  labels.clear();
  for (int i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.uniform(0, 3));
    const float x1 = static_cast<float>(rng.uniform(0, 1));
    data.add_row({x0, x1});
    const double s = x0 + 0.5 * x1;
    labels.push_back(s < 1.0 ? 0 : (s < 2.0 ? 1 : 2));
  }
  return data;
}

// ---------------------------------------------------------------- dataset

TEST(Dataset, AddAndAccessRows) {
  Dataset d({"a", "b"});
  d.add_row({1.0f, 2.0f});
  d.add_row({3.0f, 4.0f});
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_FLOAT_EQ(d.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(d.row(0)[1], 2.0f);
}

TEST(Dataset, WrongRowWidthThrows) {
  Dataset d({"a", "b"});
  EXPECT_THROW(d.add_row({1.0f}), std::invalid_argument);
}

TEST(Dataset, FeatureIndexLookup) {
  Dataset d({"alpha", "beta"});
  EXPECT_EQ(d.feature_index("beta"), 1u);
  EXPECT_THROW(d.feature_index("gamma"), std::out_of_range);
}

TEST(Dataset, SetMutates) {
  Dataset d({"a"});
  d.add_row({1.0f});
  d.set(0, 0, 9.0f);
  EXPECT_FLOAT_EQ(d.at(0, 0), 9.0f);
}

// ---------------------------------------------------------------- binner

TEST(Binner, BinsAreMonotone) {
  Dataset d({"x"});
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    d.add_row({static_cast<float>(rng.uniform(0, 100))});
  }
  const Binner binner = Binner::fit(d, 16);
  EXPECT_LE(binner.bin_of(0, 0.0f), binner.bin_of(0, 50.0f));
  EXPECT_LE(binner.bin_of(0, 50.0f), binner.bin_of(0, 100.0f));
}

TEST(Binner, LowCardinalityFeatureGetsFewBins) {
  Dataset d({"flag"});
  for (int i = 0; i < 100; ++i) {
    d.add_row({static_cast<float>(i % 2)});
  }
  const Binner binner = Binner::fit(d, 64);
  EXPECT_LE(binner.num_bins(0), 3);
  EXPECT_NE(binner.bin_of(0, 0.0f), binner.bin_of(0, 1.0f));
}

TEST(Binner, QuantileBinsRoughlyBalanced) {
  Dataset d({"x"});
  Rng rng(4);
  for (int i = 0; i < 4000; ++i) {
    d.add_row({static_cast<float>(rng.lognormal(0, 2))});
  }
  const Binner binner = Binner::fit(d, 16);
  const auto codes = binner.transform(d);
  std::vector<int> counts(static_cast<std::size_t>(binner.num_bins(0)), 0);
  for (auto code : codes[0]) ++counts[code];
  for (int c : counts) EXPECT_GT(c, 4000 / 16 / 4);
}

TEST(Binner, RejectsTooFewBins) {
  Dataset d({"x"});
  d.add_row({1.0f});
  EXPECT_THROW(Binner::fit(d, 1), std::invalid_argument);
}

// ---------------------------------------------------------------- tree

TEST(RegressionTree, FitsAStep) {
  // grad = pred - target with pred = 0: grad = -target. One split at x=0
  // should produce leaves near target means.
  Dataset d({"x"});
  std::vector<double> grad, hess;
  std::vector<std::uint32_t> rows;
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(-1, 1);
    d.add_row({static_cast<float>(x)});
    const double target = x < 0 ? -2.0 : 3.0;
    grad.push_back(-target);
    hess.push_back(1.0);
    rows.push_back(static_cast<std::uint32_t>(i));
  }
  const Binner binner = Binner::fit(d, 32);
  const auto codes = binner.transform(d);
  TreeParams params;
  params.max_depth = 2;
  const auto tree = RegressionTree::fit(codes, binner, grad, hess, rows,
                                        params);
  const float neg = -0.5f, pos = 0.5f;
  EXPECT_NEAR(tree.predict(&neg), -2.0, 0.3);
  EXPECT_NEAR(tree.predict(&pos), 3.0, 0.3);
}

TEST(RegressionTree, RespectsMaxDepth) {
  Dataset d({"x"});
  std::vector<double> grad, hess;
  std::vector<std::uint32_t> rows;
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 1);
    d.add_row({static_cast<float>(x)});
    grad.push_back(-std::sin(20 * x));
    hess.push_back(1.0);
    rows.push_back(static_cast<std::uint32_t>(i));
  }
  const Binner binner = Binner::fit(d, 64);
  const auto codes = binner.transform(d);
  TreeParams params;
  params.max_depth = 3;
  params.min_samples_leaf = 5;
  const auto tree =
      RegressionTree::fit(codes, binner, grad, hess, rows, params);
  EXPECT_LE(tree.depth(), 4);  // root at depth 1
}

TEST(RegressionTree, MinSamplesLeafBlocksTinySplits) {
  Dataset d({"x"});
  std::vector<double> grad = {-1, -1, 1, 1};
  std::vector<double> hess = {1, 1, 1, 1};
  std::vector<std::uint32_t> rows = {0, 1, 2, 3};
  for (float x : {0.0f, 0.1f, 0.9f, 1.0f}) d.add_row({x});
  const Binner binner = Binner::fit(d, 8);
  const auto codes = binner.transform(d);
  TreeParams params;
  params.min_samples_leaf = 20;  // more than available
  const auto tree =
      RegressionTree::fit(codes, binner, grad, hess, rows, params);
  EXPECT_EQ(tree.num_nodes(), 1u);  // no split possible
}

TEST(RegressionTree, SerializationRoundTrip) {
  Dataset d({"x", "y"});
  std::vector<double> grad, hess;
  std::vector<std::uint32_t> rows;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const float x = static_cast<float>(rng.uniform(-1, 1));
    const float y = static_cast<float>(rng.uniform(-1, 1));
    d.add_row({x, y});
    grad.push_back(-(x > 0 ? 1.0 : -1.0) * (y > 0 ? 1.0 : 2.0));
    hess.push_back(1.0);
    rows.push_back(static_cast<std::uint32_t>(i));
  }
  const Binner binner = Binner::fit(d, 32);
  const auto tree = RegressionTree::fit(binner.transform(d), binner, grad,
                                        hess, rows, TreeParams{});
  std::stringstream ss;
  tree.save(ss);
  const auto loaded = RegressionTree::load(ss);
  for (int i = 0; i < 50; ++i) {
    const float probe[2] = {static_cast<float>(std::sin(i)),
                            static_cast<float>(std::cos(i))};
    EXPECT_DOUBLE_EQ(tree.predict(probe), loaded.predict(probe));
  }
}

// ---------------------------------------------------------------- GBDT

TEST(GbdtClassifier, LearnsXor) {
  std::vector<int> labels;
  const auto data = xor_like_dataset(labels, 2000, 11);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 30;
  model.train(data, labels, 2, params);

  std::vector<int> test_labels;
  const auto test = xor_like_dataset(test_labels, 500, 12);
  std::vector<int> pred;
  for (std::size_t r = 0; r < test.num_rows(); ++r) {
    pred.push_back(model.predict(test.row(r)));
  }
  EXPECT_GT(accuracy(pred, test_labels), 0.9);
}

TEST(GbdtClassifier, LearnsThreeClasses) {
  std::vector<int> labels;
  const auto data = three_class_dataset(labels, 3000, 13);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 25;
  model.train(data, labels, 3, params);
  std::vector<int> test_labels;
  const auto test = three_class_dataset(test_labels, 600, 14);
  std::vector<int> pred;
  for (std::size_t r = 0; r < test.num_rows(); ++r) {
    pred.push_back(model.predict(test.row(r)));
  }
  EXPECT_GT(accuracy(pred, test_labels), 0.9);
}

TEST(GbdtClassifier, ProbabilitiesSumToOne) {
  std::vector<int> labels;
  const auto data = three_class_dataset(labels, 500, 15);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 5;
  model.train(data, labels, 3, params);
  const auto p = model.predict_proba(data.row(0));
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GbdtClassifier, BatchPredictionMatchesPerRow) {
  std::vector<int> labels;
  const auto data = three_class_dataset(labels, 1500, 21);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 15;
  model.train(data, labels, 3, params);

  std::vector<const float*> rows(data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r) rows[r] = data.row(r);

  // Classes from the node-block batch traversal must be identical to the
  // per-row path, and the raw scores bit-identical.
  const auto batched = model.predict_batch(rows.data(), rows.size());
  std::vector<double> batch_scores(rows.size() * 3);
  model.scores_batch(rows.data(), rows.size(), batch_scores.data());
  ASSERT_EQ(batched.size(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(batched[r], model.predict(rows[r]));
    const auto expected = model.scores(rows[r]);
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_DOUBLE_EQ(batch_scores[r * 3 + k], expected[k]);
    }
  }
}

TEST(GbdtClassifier, RespectsTreeBudget) {
  std::vector<int> labels;
  const auto data = three_class_dataset(labels, 400, 16);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 1000;      // would be 3000 trees...
  params.max_trees_total = 30;   // ...but the budget caps at 30
  model.train(data, labels, 3, params);
  EXPECT_LE(model.num_trees(), 30u);
}

TEST(GbdtClassifier, ValidatesInputs) {
  Dataset d({"x"});
  d.add_row({0.0f});
  GbdtClassifier model;
  EXPECT_THROW(model.train(d, {0, 1}, 2), std::invalid_argument);   // size
  EXPECT_THROW(model.train(d, {5}, 2), std::invalid_argument);      // range
  EXPECT_THROW(model.train(d, {0}, 1), std::invalid_argument);      // classes
}

TEST(GbdtClassifier, SerializationRoundTrip) {
  std::vector<int> labels;
  const auto data = three_class_dataset(labels, 800, 17);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 10;
  model.train(data, labels, 3, params);
  std::stringstream ss;
  model.save(ss);
  const auto loaded = GbdtClassifier::load(ss);
  EXPECT_EQ(loaded.num_classes(), 3);
  EXPECT_EQ(loaded.num_trees(), model.num_trees());
  for (std::size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(model.predict(data.row(r)), loaded.predict(data.row(r)));
  }
}

TEST(GbdtClassifier, LoadRejectsGarbage) {
  std::stringstream ss("not_a_model at all");
  EXPECT_THROW(GbdtClassifier::load(ss), std::runtime_error);
}

TEST(GbdtClassifier, SplitCountsFavorInformativeFeatures) {
  std::vector<int> labels;
  const auto data = xor_like_dataset(labels, 2000, 18);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 20;
  model.train(data, labels, 2, params);
  const auto counts = model.split_counts(3);
  // x0 and x1 carry all signal; the noise feature should be split on less.
  EXPECT_GT(counts[0] + counts[1], counts[2] * 3);
}

// ------------------------------------------------------------ flat forest
//
// The compiled SoA kernel must be bit-identical to the node-block
// traversal it replaced (scores_batch_nodeblock, the reference oracle):
// same float comparison semantics, same per-accumulator double addition
// order. These tests compare with EXPECT_EQ on doubles — exact equality,
// not tolerance.

TEST(FlatForest, CompiledScoresBitIdenticalToNodeBlock) {
  std::vector<int> labels;
  const auto data = three_class_dataset(labels, 1500, 23);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 15;
  model.train(data, labels, 3, params);
  ASSERT_TRUE(model.compiled_forest().compiled());

  std::vector<const float*> rows(data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r) rows[r] = data.row(r);

  // Edge batch sizes around the kernel's row-block boundary (64): empty,
  // single row, one-off-the-block, exact block, block+1, two-blocks+2.
  for (const std::size_t n : {0u, 1u, 63u, 64u, 65u, 130u}) {
    ASSERT_LE(n, rows.size());
    std::vector<double> compiled(n * 3, -1.0);
    std::vector<double> reference(n * 3, -2.0);
    model.scores_batch(rows.data(), n, compiled.data());
    model.scores_batch_nodeblock(rows.data(), n, reference.data());
    for (std::size_t i = 0; i < n * 3; ++i) {
      EXPECT_EQ(compiled[i], reference[i]) << "n=" << n << " i=" << i;
    }
    const auto classes = model.predict_batch(rows.data(), n);
    ASSERT_EQ(classes.size(), n);
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_EQ(classes[r], model.predict(rows[r])) << "n=" << n;
    }
  }
}

TEST(FlatForest, StridedMatchesRowPointers) {
  std::vector<int> labels;
  const auto data = three_class_dataset(labels, 200, 24);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 8;
  model.train(data, labels, 3, params);

  // Pack the rows into a padded block: stride wider than the row so the
  // kernel's base + r * stride arithmetic is actually exercised.
  const std::size_t width = data.num_features();
  const std::size_t stride = width + 3;
  const std::size_t n = data.num_rows();
  std::vector<float> block(n * stride, -99.0f);
  std::vector<const float*> rows(n);
  for (std::size_t r = 0; r < n; ++r) {
    std::copy(data.row(r), data.row(r) + width, block.data() + r * stride);
    rows[r] = data.row(r);
  }

  std::vector<double> strided(n * 3), pointer(n * 3);
  model.scores_batch(block.data(), stride, n, strided.data());
  model.scores_batch(rows.data(), n, pointer.data());
  for (std::size_t i = 0; i < n * 3; ++i) {
    EXPECT_EQ(strided[i], pointer[i]);
  }
  EXPECT_EQ(model.predict_batch(block.data(), stride, n),
            model.predict_batch(rows.data(), n));
}

TEST(FlatForest, ScoresIntoMatchesScores) {
  std::vector<int> labels;
  const auto data = three_class_dataset(labels, 300, 25);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 8;
  model.train(data, labels, 3, params);
  double out[3];
  for (std::size_t r = 0; r < 50; ++r) {
    model.scores_into(data.row(r), out);
    const auto expected = model.scores(data.row(r));
    for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(out[k], expected[k]);
  }
}

TEST(FlatForest, RecompiledAfterLoadBitIdentical) {
  std::vector<int> labels;
  const auto data = three_class_dataset(labels, 600, 26);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 10;
  model.train(data, labels, 3, params);

  std::stringstream ss;
  model.save(ss);
  const auto loaded = GbdtClassifier::load(ss);
  ASSERT_TRUE(loaded.compiled_forest().compiled());

  // Serialization round-trips doubles exactly (max_digits10), so the
  // recompiled forest must score bit-identically to the original.
  double a[3], b[3];
  for (std::size_t r = 0; r < 100; ++r) {
    model.scores_into(data.row(r), a);
    loaded.scores_into(data.row(r), b);
    for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(FlatForest, UntrainedLoadStaysUncompiled) {
  // A default-constructed classifier saved and reloaded has no classes and
  // no trees; recompile() must not throw and the forest stays uncompiled.
  GbdtClassifier empty;
  EXPECT_FALSE(empty.compiled_forest().compiled());
  std::vector<double> none;
  EXPECT_NO_THROW({
    const auto classes = empty.predict_batch(
        static_cast<const float* const*>(nullptr), 0);
    EXPECT_TRUE(classes.empty());
  });
}

TEST(FlatForest, RegressorCompiledMatchesNodeBlock) {
  Dataset data({"x", "y"});
  std::vector<double> targets;
  Rng rng(27);
  for (int i = 0; i < 800; ++i) {
    const double x = rng.uniform(-2, 2);
    const double y = rng.uniform(-1, 1);
    data.add_row({static_cast<float>(x), static_cast<float>(y)});
    targets.push_back(x * x + 0.5 * y);
  }
  GbdtRegressor model;
  GbdtParams params;
  params.num_rounds = 25;
  model.train(data, targets, params);

  // Per-row: compiled predict vs the reference accumulation loop.
  for (std::size_t r = 0; r < 200; ++r) {
    EXPECT_EQ(model.predict(data.row(r)), model.predict_nodeblock(data.row(r)));
  }

  // Strided batch (Dataset storage is row-major contiguous) across the
  // same block-boundary edge sizes as the classifier suite.
  for (const std::size_t n : {0u, 1u, 64u, 65u, 130u}) {
    std::vector<double> batch(n, -1.0);
    model.predict_batch(data.row(0), data.num_features(), n, batch.data());
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_EQ(batch[r], model.predict(data.row(r))) << "n=" << n;
    }
  }

  // Round-trip: the recompiled forest predicts bit-identically.
  std::stringstream ss;
  model.save(ss);
  const auto loaded = GbdtRegressor::load(ss);
  for (std::size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(model.predict(data.row(r)), loaded.predict(data.row(r)));
  }
}

TEST(GbdtRegressor, FitsQuadratic) {
  Dataset data({"x"});
  std::vector<double> targets;
  Rng rng(19);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-2, 2);
    data.add_row({static_cast<float>(x)});
    targets.push_back(x * x);
  }
  GbdtRegressor model;
  GbdtParams params;
  params.num_rounds = 60;
  model.train(data, targets, params);
  double mse = 0.0;
  for (int i = 0; i < 100; ++i) {
    const float x = static_cast<float>(-2.0 + 4.0 * i / 99.0);
    const double err = model.predict(&x) - x * x;
    mse += err * err;
  }
  EXPECT_LT(mse / 100.0, 0.05);
}

TEST(GbdtRegressor, ConstantTargetGivesBase) {
  Dataset data({"x"});
  std::vector<double> targets;
  for (int i = 0; i < 50; ++i) {
    data.add_row({static_cast<float>(i)});
    targets.push_back(7.5);
  }
  GbdtRegressor model;
  model.train(data, targets);
  const float probe = 25.0f;
  EXPECT_NEAR(model.predict(&probe), 7.5, 1e-6);
}

TEST(GbdtRegressor, SerializationRoundTrip) {
  Dataset data({"x"});
  std::vector<double> targets;
  Rng rng(20);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 1);
    data.add_row({static_cast<float>(x)});
    targets.push_back(3.0 * x);
  }
  GbdtRegressor model;
  model.train(data, targets);
  std::stringstream ss;
  model.save(ss);
  const auto loaded = GbdtRegressor::load(ss);
  const float probe = 0.5f;
  EXPECT_DOUBLE_EQ(model.predict(&probe), loaded.predict(&probe));
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy({1, 0, 3}, {1, 2, 3}), 2.0 / 3.0);
  EXPECT_THROW(accuracy({1}, {1, 2}), std::invalid_argument);
}

TEST(Metrics, TopKAccuracy) {
  const std::vector<std::vector<double>> scores{
      {0.5, 0.3, 0.2},  // label 1: second-best -> top-2 hit
      {0.1, 0.2, 0.7},  // label 2: best -> top-1 hit
  };
  const std::vector<int> labels{1, 2};
  EXPECT_DOUBLE_EQ(top_k_accuracy(scores, labels, 1), 0.5);
  EXPECT_DOUBLE_EQ(top_k_accuracy(scores, labels, 2), 1.0);
}

TEST(Metrics, AucPerfectSeparation) {
  EXPECT_DOUBLE_EQ(binary_auc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(Metrics, AucInverted) {
  EXPECT_DOUBLE_EQ(binary_auc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(Metrics, AucRandomIsHalf) {
  Rng rng(21);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_NEAR(binary_auc(scores, labels), 0.5, 0.02);
}

TEST(Metrics, AucDegenerateClasses) {
  EXPECT_DOUBLE_EQ(binary_auc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(binary_auc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(Metrics, AucHandlesTies) {
  // All scores equal: AUC must be 0.5 by symmetry.
  EXPECT_DOUBLE_EQ(binary_auc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(Metrics, ConfusionMatrixCounts) {
  const auto m = confusion_matrix({0, 1, 1, 2}, {0, 1, 2, 2}, 3);
  EXPECT_EQ(m[0][0], 1);
  EXPECT_EQ(m[1][1], 1);
  EXPECT_EQ(m[2][1], 1);
  EXPECT_EQ(m[2][2], 1);
}

TEST(Metrics, LogLossPerfect) {
  const std::vector<std::vector<double>> p{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_NEAR(log_loss(p, {0, 1}), 0.0, 1e-9);
}

// -------------------------------------------------------------- importance

TEST(Importance, InformativeFeatureDominates) {
  std::vector<int> labels;
  const auto data = xor_like_dataset(labels, 1500, 22);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 20;
  model.train(data, labels, 2, params);
  Rng rng(23);
  const auto imp = auc_decrease_importance(model, data, labels, rng);
  ASSERT_EQ(imp.size(), 2u);
  for (const auto& ci : imp) {
    // x0 + x1 importance dwarfs the noise feature.
    EXPECT_GT(ci.auc_decrease[0] + ci.auc_decrease[1],
              5.0 * ci.auc_decrease[2]);
  }
}

TEST(Importance, NormalizedPerCategory) {
  std::vector<int> labels;
  const auto data = three_class_dataset(labels, 1200, 24);
  GbdtClassifier model;
  GbdtParams params;
  params.num_rounds = 15;
  model.train(data, labels, 3, params);
  Rng rng(25);
  const auto imp = auc_decrease_importance(model, data, labels, rng);
  for (const auto& ci : imp) {
    double sum = 0.0;
    for (double v : ci.auc_decrease) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Importance, GroupAggregation) {
  std::vector<CategoryImportance> imp(1);
  imp[0].category = 0;
  imp[0].auc_decrease = {0.6, 0.2, 0.2};
  const auto groups = group_importance(imp, {0, 1, 1}, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_NEAR(groups[0][0], 0.6, 1e-12);        // single-feature group
  EXPECT_NEAR(groups[1][0], 0.2, 1e-12);        // mean of two features
}

}  // namespace
}  // namespace byom::ml
